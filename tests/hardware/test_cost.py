"""Tests for the Section VI hardware cost calculator."""

import pytest

from repro.config import BloomParams
from repro.hardware.cost import bloom_energy_pj, compute_cost


def test_paper_default_cluster_numbers():
    """Section VI: N=5, C=5, m=2 -> 7.0 KB core BFs, 4 tag bits, ~11 KB NIC."""
    report = compute_cost(cores_per_node=5, multiplexing=2,
                          remote_nodes_per_txn=4)
    assert report.core_bf_pairs == 10
    # 10 pairs x 704 B = 6.875 KB; the paper rounds each pair to 0.7 KB.
    assert report.core_bf_kb == pytest.approx(7.0, abs=0.2)
    assert report.wrtx_id_bits_per_llc_line == 4
    assert report.nic_bf_pairs == 40
    assert report.nic_total_kb == pytest.approx(11.0, abs=0.2)


def test_paper_farm_scale_numbers():
    """Section VI: N=90, C=16, m=2, D=5 -> 22.4 KB, 5 bits, ~43.1 KB."""
    report = compute_cost(cores_per_node=16, multiplexing=2,
                          remote_nodes_per_txn=5)
    assert report.core_bf_pairs == 32
    # 32 pairs x 704 B = 22.0 KB; the paper's 22.4 KB uses the rounded
    # 0.7 KB/pair figure.
    assert report.core_bf_kb == pytest.approx(22.4, abs=0.5)
    assert report.wrtx_id_bits_per_llc_line == 5
    assert report.nic_bf_pairs == 160
    assert report.nic_total_kb == pytest.approx(43.1, abs=0.3)


def test_single_transaction_needs_one_bit():
    report = compute_cost(cores_per_node=1, multiplexing=1,
                          remote_nodes_per_txn=1)
    assert report.wrtx_id_bits_per_llc_line == 1


def test_module4b_entry_size_knob():
    small = compute_cost(5, 2, 4, module4b_entry_bytes=90)
    large = compute_cost(5, 2, 4, module4b_entry_bytes=100)
    assert small.module4b_bytes == 900
    assert large.module4b_bytes == 1000


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        compute_cost(0, 2, 4)
    with pytest.raises(ValueError):
        compute_cost(5, 0, 4)
    with pytest.raises(ValueError):
        compute_cost(5, 2, -1)


def test_as_dict_roundtrip():
    report = compute_cost(5, 2, 4)
    data = report.as_dict()
    assert data["core_bf_pairs"] == 10
    assert data["nic_bf_pairs"] == 40


def test_bloom_energy():
    params = BloomParams()
    assert bloom_energy_pj(params, reads=2, writes=1) == pytest.approx(
        2 * 12.8 + 12.7)
    with pytest.raises(ValueError):
        bloom_energy_pj(params, reads=-1, writes=0)
