"""Tests for the CRC hashing used by the Bloom filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.crc import crc32c, crc32c_int, hash_family


def test_crc32c_known_vector():
    # Standard CRC-32C check value for "123456789".
    assert crc32c(b"123456789") == 0xE3069283


def test_crc32c_empty_is_zero():
    assert crc32c(b"") == 0


def test_seed_changes_output():
    assert crc32c(b"abc", seed=1) != crc32c(b"abc", seed=2)


def test_crc32c_int_matches_bytes_form():
    value = 0xDEADBEEF
    assert crc32c_int(value) == crc32c(value.to_bytes(8, "little"))


def test_hash_family_independent_functions():
    functions = hash_family(4, 1024)
    assert len(functions) == 4
    outputs = [fn(123456) for fn in functions]
    assert len(set(outputs)) > 1  # different seeds, different positions


def test_hash_family_range():
    functions = hash_family(2, 97)
    for value in [0, 1, 2 ** 63, 42]:
        for fn in functions:
            assert 0 <= fn(value) < 97


def test_hash_family_validates_args():
    with pytest.raises(ValueError):
        hash_family(0, 128)
    with pytest.raises(ValueError):
        hash_family(2, 1)


@given(st.integers(min_value=0, max_value=2 ** 64 - 1))
@settings(max_examples=200, deadline=None)
def test_crc32c_int_deterministic_and_32bit(value):
    first = crc32c_int(value)
    assert first == crc32c_int(value)
    assert 0 <= first < 2 ** 32


@given(st.lists(st.integers(min_value=0, max_value=2 ** 32), min_size=50,
                max_size=50, unique=True))
@settings(max_examples=20, deadline=None)
def test_crc_dispersion_no_catastrophic_collisions(values):
    """Hashing 50 distinct keys into 1024 buckets should not all collide."""
    fn = hash_family(1, 1024)[0]
    buckets = {fn(value) for value in values}
    assert len(buckets) >= 25
