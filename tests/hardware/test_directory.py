"""Tests for the directory: WrTX_ID tags and partial locking (Fig. 7)."""

import pytest

from repro.hardware.bloom import BloomFilter
from repro.hardware.directory import Directory, snapshot_filters


def make_pair(reads=(), writes=()):
    return snapshot_filters(reads, writes)


class TestWriterTags:
    def test_untagged_line_has_no_writer(self):
        assert Directory().writer_of(100) is None

    def test_tag_and_lookup(self):
        directory = Directory()
        directory.tag_write(100, txid=7)
        assert directory.writer_of(100) == 7
        assert directory.lines_written_by(7) == {100}

    def test_retag_same_tx_ok(self):
        directory = Directory()
        directory.tag_write(100, txid=7)
        directory.tag_write(100, txid=7)
        assert directory.lines_written_by(7) == {100}

    def test_retag_other_tx_is_protocol_bug(self):
        directory = Directory()
        directory.tag_write(100, txid=7)
        with pytest.raises(RuntimeError):
            directory.tag_write(100, txid=8)

    def test_clear_writer_tags(self):
        directory = Directory()
        directory.tag_write(100, txid=7)
        directory.tag_write(200, txid=7)
        directory.tag_write(300, txid=9)
        assert directory.clear_writer_tags(7) == 2
        assert directory.writer_of(100) is None
        assert directory.writer_of(300) == 9


class TestPartialLocking:
    def test_lock_install_and_unlock(self):
        directory = Directory()
        read_bf, write_bf = make_pair(reads=[1], writes=[2])
        assert directory.try_lock((0, 1), read_bf, write_bf, [2])
        assert directory.holds_lock((0, 1))
        directory.unlock((0, 1))
        assert not directory.holds_lock((0, 1))
        assert directory.active_locks == 0

    def test_double_lock_same_owner_rejected(self):
        directory = Directory()
        read_bf, write_bf = make_pair()
        directory.try_lock((0, 1), read_bf, write_bf, [])
        with pytest.raises(RuntimeError):
            directory.try_lock((0, 1), read_bf, write_bf, [])

    def test_conflicting_write_lines_denied(self):
        directory = Directory()
        first_read, first_write = make_pair(reads=[10], writes=[20])
        assert directory.try_lock((0, 1), first_read, first_write, [20])
        second_read, second_write = make_pair(writes=[10])
        # Second committer writes line 10, which the first reader locked.
        assert not directory.try_lock((0, 2), second_read, second_write, [10])
        assert directory.lock_failures == 1

    def test_disjoint_commits_lock_concurrently(self):
        directory = Directory()
        a_read, a_write = make_pair(reads=[1], writes=[2])
        b_read, b_write = make_pair(reads=[100], writes=[200])
        assert directory.try_lock((0, 1), a_read, a_write, [2])
        assert directory.try_lock((0, 2), b_read, b_write, [200])
        assert directory.active_locks == 2

    def test_buffer_capacity_limit(self):
        directory = Directory(locking_buffers=1)
        a_read, a_write = make_pair(writes=[1])
        b_read, b_write = make_pair(writes=[1000])
        assert directory.try_lock((0, 1), a_read, a_write, [1])
        assert not directory.try_lock((0, 2), b_read, b_write, [1000])

    def test_read_blocked_by_locked_write_bf(self):
        directory = Directory()
        read_bf, write_bf = make_pair(writes=[50])
        directory.try_lock((0, 1), read_bf, write_bf, [50])
        assert directory.read_blocked(50)
        assert not directory.read_blocked(51) or BloomFilter(1024).might_contain(51)

    def test_write_blocked_by_locked_read_bf(self):
        directory = Directory()
        read_bf, write_bf = make_pair(reads=[60])
        directory.try_lock((0, 1), read_bf, write_bf, [])
        assert directory.write_blocked(60)

    def test_owner_not_blocked_by_own_lock(self):
        directory = Directory()
        read_bf, write_bf = make_pair(reads=[60], writes=[61])
        directory.try_lock((0, 1), read_bf, write_bf, [61])
        assert not directory.read_blocked(61, requester=(0, 1))
        assert not directory.write_blocked(60, requester=(0, 1))
        assert directory.read_blocked(61, requester=(0, 2))

    def test_unlock_unknown_owner_is_noop(self):
        Directory().unlock((9, 9))

    def test_lock_owners_listing(self):
        directory = Directory()
        read_bf, write_bf = make_pair()
        directory.try_lock((3, 4), read_bf, write_bf, [])
        assert directory.lock_owners() == [(3, 4)]


class TestWholeDirectoryAblation:
    """partial=False degrades to one whole-directory lock."""

    def test_second_lock_always_denied(self):
        directory = Directory(partial=False)
        a_read, a_write = make_pair(writes=[1])
        b_read, b_write = make_pair(writes=[1000])
        assert directory.try_lock((0, 1), a_read, a_write, [1])
        assert not directory.try_lock((0, 2), b_read, b_write, [1000])

    def test_any_access_blocked_while_locked(self):
        directory = Directory(partial=False)
        read_bf, write_bf = make_pair(writes=[1])
        directory.try_lock((0, 1), read_bf, write_bf, [1])
        assert directory.read_blocked(999999)
        assert directory.write_blocked(999999)
        assert not directory.read_blocked(999999, requester=(0, 1))


def test_snapshot_filters_contain_given_lines():
    read_bf, write_bf = snapshot_filters([1, 2, 3], [4, 5])
    assert all(read_bf.might_contain(line) for line in (1, 2, 3))
    assert all(write_bf.might_contain(line) for line in (4, 5))
    assert read_bf.inserted_count == 3
    assert write_bf.inserted_count == 2
