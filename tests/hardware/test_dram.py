"""Tests for the DRAM timing model."""

import pytest

from repro.config import DramParams
from repro.hardware.dram import DramModel


def test_unloaded_access_costs_rt():
    dram = DramModel(DramParams())
    assert dram.access(0.0, 0) == pytest.approx(100.0)


def test_same_bank_back_to_back_queues():
    dram = DramModel(DramParams())
    first = dram.access(0.0, 0)
    second = dram.access(0.0, 0)  # same line -> same bank, still busy
    assert second == pytest.approx(first + DramModel.BANK_OCCUPANCY_NS)


def test_different_banks_do_not_queue():
    dram = DramModel(DramParams())
    dram.access(0.0, 0)
    other = dram.access(0.0, 64)  # next line -> next bank
    assert other == pytest.approx(100.0)


def test_bank_frees_over_time():
    dram = DramModel(DramParams())
    dram.access(0.0, 0)
    later = dram.access(1000.0, 0)
    assert later == pytest.approx(100.0)


def test_bank_interleaving_by_line():
    dram = DramModel(DramParams())
    assert dram.bank_of(0) == 0
    assert dram.bank_of(64) == 1
    assert dram.bank_of(64 * dram.total_banks) == 0


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        DramModel(DramParams()).access(-1.0, 0)


def test_mean_queue_tracks_contention():
    dram = DramModel(DramParams())
    assert dram.mean_queue_ns() == 0.0
    for _ in range(5):
        dram.access(0.0, 0)
    assert dram.mean_queue_ns() > 0.0
    assert dram.access_count == 5
