"""Tests for the Bloom-filter energy model."""

import pytest

from repro.config import ClusterConfig
from repro.hardware.bloom import BloomFilter
from repro.hardware.energy import (
    energy_report,
    provisioned_filter_pairs,
    reset_energy_counters,
)


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_energy_counters()
    yield
    reset_energy_counters()


def test_filters_count_accesses_globally():
    bf = BloomFilter(1024)
    other = BloomFilter(512, hashes=1)
    bf.insert(1)
    other.insert(2)
    bf.might_contain(1)
    assert BloomFilter.total_write_ops == 2
    assert BloomFilter.total_read_ops == 1


def test_reset_clears_counters():
    BloomFilter(1024).insert(1)
    reset_energy_counters()
    assert BloomFilter.total_write_ops == 0


def test_dynamic_energy_uses_table_iii_values():
    config = ClusterConfig()
    bf = BloomFilter(1024)
    bf.insert(1)          # one write: 12.7 pJ
    bf.might_contain(1)   # one read: 12.8 pJ
    report = energy_report(config, elapsed_ns=0.0, committed=1)
    assert report.dynamic_pj == pytest.approx(12.8 + 12.7)
    assert report.leakage_pj == 0.0


def test_leakage_scales_with_time_and_provisioning():
    config = ClusterConfig()  # 5 nodes, 10 tx/node, D=4 -> 50 pairs/node
    pairs = provisioned_filter_pairs(config)
    assert pairs == 5 * (10 + 40)
    report = energy_report(config, elapsed_ns=1000.0, committed=1)
    # 1.7 mW == 1.7 pJ/ns per pair.
    assert report.leakage_pj == pytest.approx(pairs * 1.7 * 1000.0)


def test_per_transaction_normalization():
    config = ClusterConfig()
    bf = BloomFilter(1024)
    for key in range(100):
        bf.insert(key)
    report = energy_report(config, elapsed_ns=0.0, committed=10)
    assert report.nj_per_transaction == pytest.approx(
        100 * 12.7 / 1000.0 / 10)
    empty = energy_report(config, elapsed_ns=0.0, committed=0)
    assert empty.nj_per_transaction == 0.0


def test_validates_inputs():
    config = ClusterConfig()
    with pytest.raises(ValueError):
        energy_report(config, elapsed_ns=-1.0, committed=0)
    with pytest.raises(ValueError):
        energy_report(config, elapsed_ns=0.0, committed=-1)


def test_real_run_produces_energy_numbers():
    from repro.runner import run_experiment
    from repro.workloads import MicroWorkload

    reset_energy_counters()
    result = run_experiment("hades", MicroWorkload(0.5, record_count=2000),
                            duration_ns=100_000.0, seed=4, llc_sets=256)
    report = energy_report(result.config, elapsed_ns=100_000.0,
                           committed=result.metrics.meter.committed)
    assert report.read_ops > 0 and report.write_ops > 0
    assert report.total_pj > 0
    # Energy-cheap, as Section VI argues: well under a microjoule per txn.
    assert report.nj_per_transaction < 1000.0
