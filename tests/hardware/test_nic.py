"""Tests for the SmartNIC model (Modules 4a / 4b)."""

import pytest

from repro.config import BloomParams
from repro.hardware.nic import Nic


def make_nic(node_id=0, pairs=40, m4b=10):
    return Nic(node_id, BloomParams(), bf_pair_capacity=pairs,
               module4b_capacity=m4b)


class TestModule4a:
    def test_remote_state_allocated_on_demand(self):
        nic = make_nic()
        assert not nic.has_remote_state((1, 5))
        state = nic.remote_state((1, 5))
        assert nic.has_remote_state((1, 5))
        assert state.read_bf.is_empty and state.write_bf.is_empty

    def test_record_remote_read_inserts_lines(self):
        nic = make_nic()
        nic.record_remote_read((1, 5), [10, 11])
        state = nic.remote_state((1, 5))
        assert state.read_bf.might_contain(10)
        assert state.shadow_reads == {10, 11}

    def test_record_remote_write_only_partial_lines(self):
        nic = make_nic()
        nic.record_remote_write((1, 5), [100])
        state = nic.remote_state((1, 5))
        assert state.write_bf.might_contain(100)
        assert state.shadow_writes == {100}

    def test_conflict_check_finds_reader(self):
        nic = make_nic()
        nic.record_remote_read((1, 5), [10])
        result = nic.check_remote_conflicts([10])
        assert result.conflicting_owners == {(1, 5)}
        assert result.hits >= 1

    def test_conflict_check_excludes_committer(self):
        nic = make_nic()
        nic.record_remote_read((1, 5), [10])
        result = nic.check_remote_conflicts([10], exclude=(1, 5))
        assert result.conflicting_owners == set()

    def test_conflict_check_counts_false_positive(self):
        nic = make_nic()
        # Insert many lines to pollute the read BF, then probe lines that
        # were never inserted: any hit is a false positive.
        nic.record_remote_read((1, 5), list(range(0, 6400, 64)))
        probes = list(range(10 ** 9, 10 ** 9 + 64 * 3000, 64))
        result = nic.check_remote_conflicts(probes)
        assert result.false_positive_hits == result.hits

    def test_conflict_check_ignores_reads_when_asked(self):
        nic = make_nic()
        nic.record_remote_read((1, 5), [10])
        result = nic.check_remote_conflicts([10], reads_matter=False)
        assert result.conflicting_owners == set()

    def test_clear_remote_drops_state(self):
        nic = make_nic()
        nic.record_remote_read((1, 5), [10])
        nic.clear_remote((1, 5))
        assert not nic.has_remote_state((1, 5))
        assert nic.check_remote_conflicts([10]).conflicting_owners == set()

    def test_bf_pool_overflow_counted(self):
        nic = make_nic(pairs=2)
        nic.remote_state((1, 1))
        nic.remote_state((1, 2))
        assert nic.bf_pool_overflows == 0
        nic.remote_state((1, 3))
        assert nic.bf_pool_overflows == 1

    def test_remote_owners_listing(self):
        nic = make_nic()
        nic.remote_state((2, 9))
        assert nic.remote_owners() == [(2, 9)]


class TestModule4b:
    def test_buffer_remote_write_groups_by_node(self):
        nic = make_nic()
        nic.buffer_remote_write(txid=1, remote_node=2, line=100, value="v1")
        nic.buffer_remote_write(txid=1, remote_node=3, line=200, value="v2")
        assert nic.involved_nodes(1) == {2, 3}
        assert nic.writes_for_node(1, 2) == [100]
        assert nic.data_payload(1, 3) == {200: "v2"}

    def test_rewrite_same_line_keeps_single_entry(self):
        nic = make_nic()
        nic.buffer_remote_write(1, 2, 100, "old")
        nic.buffer_remote_write(1, 2, 100, "new")
        assert nic.writes_for_node(1, 2) == [100]
        assert nic.buffered_value(1, 2, 100) == "new"

    def test_read_your_writes_lookup(self):
        nic = make_nic()
        assert nic.buffered_value(1, 2, 100) is None
        nic.buffer_remote_write(1, 2, 100, "mine")
        assert nic.buffered_value(1, 2, 100) == "mine"

    def test_note_involved_node_for_reads(self):
        nic = make_nic()
        nic.note_involved_node(1, 4)
        assert nic.involved_nodes(1) == {4}
        assert nic.writes_for_node(1, 4) == []

    def test_clear_local_drops_state(self):
        nic = make_nic()
        nic.buffer_remote_write(1, 2, 100, "v")
        nic.clear_local(1)
        assert nic.involved_nodes(1) == set()
        assert nic.local_tx_count == 0

    def test_module4b_capacity_enforced(self):
        nic = make_nic(m4b=1)
        nic.local_state(1)
        with pytest.raises(RuntimeError):
            nic.local_state(2)

    def test_queries_on_unknown_tx_are_empty(self):
        nic = make_nic()
        assert nic.involved_nodes(99) == set()
        assert nic.writes_for_node(99, 1) == []
        assert nic.data_payload(99, 1) == {}
