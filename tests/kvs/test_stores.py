"""Tests for the four key-value store engines.

Each store is tested through the shared interface plus its structural
invariants; property-based tests compare every store against a plain
dict model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvs import STORES, BPlusTreeStore, BTreeStore, HashTableStore, OrderedMapStore


def make_store(kind):
    if kind == "ht":
        return HashTableStore(expected_keys=256)
    if kind == "btree":
        return BTreeStore(fanout=8)
    if kind == "bplustree":
        return BPlusTreeStore(fanout=8)
    return STORES[kind]()


@pytest.fixture(params=sorted(STORES))
def store(request):
    return make_store(request.param)


class TestCommonBehavior:
    def test_empty_store(self, store):
        assert len(store) == 0
        assert store.lookup(42) is None
        assert 42 not in store

    def test_insert_and_lookup(self, store):
        store.insert(5, 500)
        hit = store.lookup(5)
        assert hit.record_id == 500
        assert hit.probe_depth >= 1
        assert 5 in store
        assert len(store) == 1

    def test_overwrite_updates_value(self, store):
        store.insert(5, 500)
        store.insert(5, 999)
        assert store.lookup(5).record_id == 999
        assert len(store) == 1

    def test_bulk_load(self, store):
        store.bulk_load((key, key * 10) for key in range(200))
        assert len(store) == 200
        for key in (0, 57, 199):
            assert store.lookup(key).record_id == key * 10

    def test_missing_keys_after_load(self, store):
        store.bulk_load((key, key) for key in range(0, 100, 2))
        assert store.lookup(1) is None
        assert store.lookup(99) is None

    def test_large_sequential_and_random_loads(self, store):
        import random
        keys = list(range(1000))
        random.Random(3).shuffle(keys)
        for key in keys:
            store.insert(key, key + 1)
        assert len(store) == 1000
        assert all(store.lookup(key).record_id == key + 1
                   for key in range(0, 1000, 97))


class TestHashTable:
    def test_bucket_count_power_of_two(self):
        store = HashTableStore(expected_keys=100)
        assert store.bucket_count & (store.bucket_count - 1) == 0

    def test_probe_depth_counts_chain_position(self):
        store = HashTableStore(expected_keys=1)  # force chaining
        for key in range(20):
            store.insert(key, key)
        depths = [store.lookup(key).probe_depth for key in range(20)]
        assert max(depths) > 1

    def test_delete(self):
        store = HashTableStore(expected_keys=16)
        store.insert(1, 10)
        assert store.delete(1)
        assert store.lookup(1) is None
        assert not store.delete(1)
        assert len(store) == 0

    def test_validates_args(self):
        with pytest.raises(ValueError):
            HashTableStore(expected_keys=0)
        with pytest.raises(ValueError):
            HashTableStore(expected_keys=10, load_factor=0)

    def test_no_range_scan(self):
        with pytest.raises(NotImplementedError):
            HashTableStore(expected_keys=4).range_scan(0, 10)


class TestBTree:
    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            BTreeStore(fanout=2)

    def test_height_grows_logarithmically(self):
        store = BTreeStore(fanout=8)
        store.bulk_load((key, key) for key in range(1000))
        assert 3 <= store.height() <= 6

    def test_invariants_after_random_inserts(self):
        import random
        store = BTreeStore(fanout=8)
        keys = list(range(500))
        random.Random(7).shuffle(keys)
        for key in keys:
            store.insert(key, key)
        store.check_invariants()

    def test_range_scan_sorted_and_complete(self):
        store = BTreeStore(fanout=8)
        store.bulk_load((key, key * 2) for key in range(0, 300, 3))
        scan = store.range_scan(10, 50)
        assert scan == [(key, key * 2) for key in range(12, 51, 3)]

    def test_range_scan_rejects_inverted(self):
        with pytest.raises(ValueError):
            BTreeStore().range_scan(10, 5)


class TestBPlusTree:
    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            BPlusTreeStore(fanout=2)

    def test_invariants_after_random_inserts(self):
        import random
        store = BPlusTreeStore(fanout=8)
        keys = list(range(500))
        random.Random(9).shuffle(keys)
        for key in keys:
            store.insert(key, key)
        store.check_invariants()

    def test_leaf_chain_range_scan(self):
        store = BPlusTreeStore(fanout=8)
        store.bulk_load((key, key + 1) for key in range(200))
        assert store.range_scan(50, 60) == [(key, key + 1)
                                            for key in range(50, 61)]

    def test_scan_across_leaf_boundaries(self):
        store = BPlusTreeStore(fanout=4)  # tiny leaves -> many boundaries
        store.bulk_load((key, key) for key in range(100))
        assert len(store.range_scan(0, 99)) == 100

    def test_height_grows(self):
        store = BPlusTreeStore(fanout=4)
        store.bulk_load((key, key) for key in range(200))
        assert store.height() >= 3


class TestOrderedMap:
    def test_avl_invariants_after_adversarial_inserts(self):
        store = OrderedMapStore()
        for key in range(200):  # sorted inserts: worst case for a BST
            store.insert(key, key)
        store.check_invariants()
        assert store.height() <= 10  # balanced: ~1.44 log2(200) ≈ 11

    def test_probe_depth_bounded_by_height(self):
        store = OrderedMapStore()
        store.bulk_load((key, key) for key in range(128))
        for key in (0, 63, 127):
            assert store.lookup(key).probe_depth <= store.height()

    def test_range_scan_sorted(self):
        store = OrderedMapStore()
        store.bulk_load((key, key) for key in range(0, 100, 5))
        assert store.range_scan(10, 40) == [(key, key)
                                            for key in range(10, 41, 5)]


@pytest.mark.parametrize("kind", sorted(STORES))
@given(pairs=st.dictionaries(st.integers(min_value=0, max_value=10 ** 6),
                             st.integers(min_value=0, max_value=10 ** 9),
                             min_size=1, max_size=80))
@settings(max_examples=25, deadline=None)
def test_store_matches_dict_model(kind, pairs):
    """Property: every store behaves like a dict for insert/lookup."""
    store = make_store(kind)
    for key, value in pairs.items():
        store.insert(key, value)
    assert len(store) == len(pairs)
    for key, value in pairs.items():
        assert store.lookup(key).record_id == value
    for probe in [min(pairs) - 1, max(pairs) + 1]:
        if probe not in pairs and probe >= 0:
            assert store.lookup(probe) is None


@pytest.mark.parametrize("kind", ["btree", "bplustree", "map"])
@given(keys=st.sets(st.integers(min_value=0, max_value=10 ** 4),
                    min_size=2, max_size=60),
       bounds=st.tuples(st.integers(min_value=0, max_value=10 ** 4),
                        st.integers(min_value=0, max_value=10 ** 4)))
@settings(max_examples=25, deadline=None)
def test_range_scan_matches_sorted_filter(kind, keys, bounds):
    """Property: ordered stores' scans equal a sorted dict filter."""
    low, high = min(bounds), max(bounds)
    store = make_store(kind)
    for key in keys:
        store.insert(key, key * 3)
    expected = [(key, key * 3) for key in sorted(keys) if low <= key <= high]
    assert store.range_scan(low, high) == expected
