"""Tests for the open-loop traffic layer (repro.load)."""
