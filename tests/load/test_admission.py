"""Admission queues: shedding policies, hysteresis backpressure, waiters."""

from repro.config import LoadParams
from repro.load.admission import AdmissionQueue, Job
from repro.sim.engine import Engine


def params(**kwargs):
    defaults = dict(enabled=True, queue_capacity=2,
                    backpressure_high=2.0, backpressure_low=1.0)
    defaults.update(kwargs)
    return LoadParams(**defaults)


def job(uid, deadline=None):
    return Job(uid=uid, seq=uid, node=0, spec=[], workload="w",
               arrival_ns=float(uid), sheddable=True, deadline_ns=deadline)


class TestFifo:
    def test_drop_tail_rejects_newcomer(self):
        queue = AdmissionQueue(params(shed_policy="fifo"))
        assert queue.offer(job(1)) is None
        assert queue.offer(job(2)) is None
        newcomer = job(3)
        assert queue.offer(newcomer) is newcomer
        assert queue.depth == 2

    def test_serves_oldest_first(self):
        queue = AdmissionQueue(params(shed_policy="fifo"))
        queue.offer(job(1))
        queue.offer(job(2))
        assert queue.pop().uid == 1
        assert queue.pop().uid == 2
        assert queue.pop() is None


class TestLifo:
    def test_evicts_oldest_waiter(self):
        queue = AdmissionQueue(params(shed_policy="lifo"))
        queue.offer(job(1))
        queue.offer(job(2))
        victim = queue.offer(job(3))
        assert victim.uid == 1
        assert queue.depth == 2

    def test_serves_newest_first(self):
        queue = AdmissionQueue(params(shed_policy="lifo"))
        queue.offer(job(1))
        queue.offer(job(2))
        assert queue.pop().uid == 2
        assert queue.pop().uid == 1


class TestDeadline:
    def test_evicts_least_urgent_waiter(self):
        queue = AdmissionQueue(params(shed_policy="deadline"))
        queue.offer(job(1, deadline=50.0))
        queue.offer(job(2, deadline=10.0))
        victim = queue.offer(job(3, deadline=30.0))
        assert victim.uid == 1  # deadline 50 is least urgent

    def test_rejects_least_urgent_newcomer(self):
        queue = AdmissionQueue(params(shed_policy="deadline"))
        queue.offer(job(1, deadline=50.0))
        queue.offer(job(2, deadline=10.0))
        newcomer = job(3, deadline=100.0)
        assert queue.offer(newcomer) is newcomer

    def test_serves_earliest_deadline_first(self):
        queue = AdmissionQueue(params(shed_policy="deadline",
                                      queue_capacity=3))
        queue.offer(job(1, deadline=50.0))
        queue.offer(job(2, deadline=10.0))
        queue.offer(job(3, deadline=30.0))
        assert [queue.pop().uid for _ in range(3)] == [2, 3, 1]

    def test_no_deadline_means_least_urgent(self):
        queue = AdmissionQueue(params(shed_policy="deadline"))
        queue.offer(job(1, deadline=None))
        queue.offer(job(2, deadline=10.0))
        victim = queue.offer(job(3, deadline=30.0))
        assert victim.uid == 1


class TestBackpressure:
    def test_hysteresis_latch(self):
        # capacity 4, high at 3 (0.75), clear at 2 (0.5).
        queue = AdmissionQueue(params(queue_capacity=4,
                                      backpressure_high=0.75,
                                      backpressure_low=0.5))
        for uid in (1, 2):
            queue.offer(job(uid))
        assert not queue.backpressure
        queue.offer(job(3))
        assert queue.backpressure
        assert queue.backpressure_engagements == 1
        queue.pop()
        assert not queue.backpressure  # depth 2 == low -> cleared
        # ... and re-engages on the next crossing.
        queue.offer(job(4))
        assert queue.backpressure
        assert queue.backpressure_engagements == 2

    def test_max_depth_tracked(self):
        queue = AdmissionQueue(params(queue_capacity=8))
        for uid in range(5):
            queue.offer(job(uid))
        queue.pop()
        assert queue.max_depth == 5


class TestWaiters:
    def test_admit_wakes_oldest_waiter(self):
        engine = Engine()
        queue = AdmissionQueue(params())
        first = queue.wait_event(engine)
        second = queue.wait_event(engine)
        queue.offer(job(1))
        assert first.triggered
        assert not second.triggered
        queue.offer(job(2))
        assert second.triggered

    def test_shed_offer_wakes_nobody(self):
        engine = Engine()
        queue = AdmissionQueue(params(shed_policy="fifo"))
        queue.offer(job(1))
        queue.offer(job(2))
        waiter = queue.wait_event(engine)
        queue.offer(job(3))  # drop-tail: nothing admitted
        assert not waiter.triggered
