"""Arrival processes: determinism, long-run rates, modulation."""

import pytest

from repro.config import LoadParams
from repro.load.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.sim.random import DeterministicRandom


def arrival_times(process, horizon_ns, start=0.0):
    """Absolute arrival times up to ``horizon_ns``."""
    t, times = start, []
    while True:
        t += process.next_gap_ns(t)
        if t >= horizon_ns:
            return times
        times.append(t)


def processes(seed):
    rng = lambda tag: DeterministicRandom(f"{seed}:{tag}")  # noqa: E731
    return [
        PoissonArrivals(rng("p"), 0.01),
        BurstyArrivals(rng("b"), 0.01, on_ns=50_000.0, off_ns=50_000.0,
                       burst_factor=1.8),
        DiurnalArrivals(rng("d"), 0.01, period_ns=1_000_000.0,
                        min_fraction=0.2),
    ]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        for a, b in zip(processes(7), processes(7)):
            assert arrival_times(a, 200_000.0) == arrival_times(b, 200_000.0)

    def test_different_seed_different_stream(self):
        for a, b in zip(processes(7), processes(8)):
            assert arrival_times(a, 200_000.0) != arrival_times(b, 200_000.0)

    def test_gaps_positive(self):
        for process in processes(3):
            t = 0.0
            for _ in range(500):
                gap = process.next_gap_ns(t)
                assert gap > 0.0
                t += gap


class TestLongRunRate:
    """Every process keeps the configured long-run mean rate."""

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_mean_rate(self, index):
        process = processes(11)[index]
        horizon = 3_000_000.0  # 3 diurnal periods / 30 burst cycles
        count = len(arrival_times(process, horizon))
        expected = 0.01 * horizon
        assert abs(count - expected) / expected < 0.05

    def test_bursty_on_windows_are_denser(self):
        process = processes(11)[1]
        on = off = 0
        for t in arrival_times(process, 2_000_000.0):
            if t % 100_000.0 < 50_000.0:
                on += 1
            else:
                off += 1
        # ON rate is 1.8x the mean, OFF is derived (0.2x): strongly skewed.
        assert on > 3 * off

    def test_diurnal_peak_is_denser_than_trough(self):
        process = processes(11)[2]
        # Intensity peaks at T/2 and troughs at 0/T.
        peak = trough = 0
        for t in arrival_times(process, 4_000_000.0):
            pos = (t % 1_000_000.0) / 1_000_000.0
            if 0.35 < pos < 0.65:
                peak += 1
            elif pos < 0.15 or pos > 0.85:
                trough += 1
        assert peak > 2 * trough

    def test_diurnal_intensity_bounds(self):
        process = processes(2)[2]
        for t in (0.0, 250_000.0, 500_000.0, 999_999.0):
            assert 0.0 < process.intensity(t) <= process.peak + 1e-12


class TestMakeArrivals:
    def test_dispatch(self):
        rng = DeterministicRandom("x")
        cases = [("poisson", PoissonArrivals), ("bursty", BurstyArrivals),
                 ("diurnal", DiurnalArrivals)]
        for name, cls in cases:
            params = LoadParams(enabled=True, arrival=name)
            assert isinstance(make_arrivals(params, rng, nodes=4), cls)

    def test_rate_split_across_nodes(self):
        params = LoadParams(enabled=True, rate_tps=4_000_000.0)
        process = make_arrivals(params, DeterministicRandom("x"), nodes=4)
        assert process.rate == pytest.approx(0.001)  # 1M tps per node

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(DeterministicRandom("x"), 0.0)
