"""Retry budgets and the overload controller: pure state machines."""

import pytest

from repro.config import LoadParams
from repro.load.admission import Job
from repro.load.budget import RetryBudget
from repro.load.controller import (
    MODE_DEGRADED,
    MODE_NORMAL,
    OverloadController,
)


class TestRetryBudget:
    def test_burst_then_dry(self):
        budget = RetryBudget(refill_per_ns=0.0001, burst=2.0)
        assert budget.allow(0.0, attempts=1)
        assert budget.allow(0.0, attempts=1)
        assert not budget.allow(0.0, attempts=1)  # bucket dry
        assert budget.granted == 2
        assert budget.denied == 1

    def test_refill_over_sim_time(self):
        budget = RetryBudget(refill_per_ns=0.001, burst=1.0)
        assert budget.allow(0.0, attempts=1)
        assert not budget.allow(0.0, attempts=1)
        # 1000 ns at 0.001 tokens/ns refills one token.
        assert budget.allow(1000.0, attempts=1)

    def test_refill_caps_at_burst(self):
        budget = RetryBudget(refill_per_ns=1.0, burst=2.0)
        assert budget.allow(1_000_000.0, attempts=1)
        assert budget.allow(1_000_000.0, attempts=1)
        assert not budget.allow(1_000_000.0, attempts=1)

    def test_max_attempts_cap(self):
        budget = RetryBudget(refill_per_ns=0.0, burst=16.0, max_attempts=3)
        assert budget.allow(0.0, attempts=1)  # retry would be attempt 2
        assert not budget.allow(0.0, attempts=2)  # attempt 3 hits the cap

    def test_zero_refill_never_limits(self):
        budget = RetryBudget(refill_per_ns=0.0, burst=1.0)
        for _ in range(100):
            assert budget.allow(0.0, attempts=5)

    def test_reset_keeps_bucket_level(self):
        budget = RetryBudget(refill_per_ns=0.0001, burst=1.0)
        assert budget.allow(0.0, attempts=1)
        budget.reset_stats()
        assert budget.granted == 0 and budget.denied == 0
        assert not budget.allow(0.0, attempts=1)  # still dry

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(refill_per_ns=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            RetryBudget(refill_per_ns=0.0, burst=0.5)


def _job(sheddable):
    return Job(uid=1, seq=0, node=0, spec=[], workload="w", arrival_ns=0.0,
               sheddable=sheddable, deadline_ns=None)


class TestOverloadController:
    def controller(self):
        # capacity 8: degrade at depth 4, recover at depth 2.
        return OverloadController(LoadParams(
            enabled=True, queue_capacity=8,
            degrade_high=0.5, degrade_low=0.25))

    def test_hysteresis_transitions(self):
        ctl = self.controller()
        ctl.observe(0.0, 3)
        assert ctl.mode == MODE_NORMAL
        ctl.observe(10.0, 4)
        assert ctl.mode == MODE_DEGRADED
        ctl.observe(20.0, 3)  # above low: still degraded
        assert ctl.mode == MODE_DEGRADED
        ctl.observe(30.0, 2)
        assert ctl.mode == MODE_NORMAL
        assert ctl.transitions == 1
        assert ctl.degraded_ns == pytest.approx(20.0)

    def test_should_shed_only_degraded_and_sheddable(self):
        ctl = self.controller()
        assert not ctl.should_shed(_job(sheddable=True))
        ctl.observe(0.0, 8)
        assert ctl.should_shed(_job(sheddable=True))
        assert not ctl.should_shed(_job(sheddable=False))

    def test_finalize_closes_open_interval(self):
        ctl = self.controller()
        ctl.observe(0.0, 8)
        ctl.finalize(50.0)
        assert ctl.degraded_ns == pytest.approx(50.0)
        assert ctl.mode == MODE_DEGRADED  # mode untouched

    def test_reset_keeps_mode_drops_stats(self):
        ctl = self.controller()
        ctl.observe(0.0, 8)
        ctl.reset_stats(100.0)
        assert ctl.mode == MODE_DEGRADED
        assert ctl.transitions == 0
        ctl.observe(150.0, 2)  # degraded interval restarts at the reset
        assert ctl.degraded_ns == pytest.approx(50.0)
