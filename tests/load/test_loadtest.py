"""The loadtest search: stages, report schema, artifact byte-stability."""

import pytest

from repro.load import run_loadtest, write_loadtest
from repro.analysis.load import format_load_summary, format_loadtest
from repro.workloads import make_workload


def tiny_loadtest(**kwargs):
    settings = dict(
        workload_factory=lambda: make_workload("HT-wB", scale=0.05),
        duration_ns=60_000.0, warmup_ns=20_000.0, iters=2, seed=42)
    settings.update(kwargs)
    return run_loadtest("hades", "HT-wB", **settings)


@pytest.fixture(scope="module")
def report():
    return tiny_loadtest()


class TestReport:
    def test_stages_present(self, report):
        assert report["kind"] == "loadtest"
        assert report["capacity_tps"] > 0
        assert len(report["probes"]) == report["iters"] == 2
        assert 0 <= report["max_sustainable_tps"] \
            <= 1.25 * report["capacity_tps"]
        assert report["utilization_at_slo"] <= 1.25

    def test_overload_probe_reports_degradation(self, report):
        overload = report["overload"]
        assert overload["rate_tps"] == pytest.approx(
            2.0 * max(report["max_sustainable_tps"], report["capacity_tps"]))
        assert overload["goodput_vs_capacity"] > 0
        assert overload["shed_rate"] + overload["timeout_rate"] > 0
        assert overload["max_queue_depth"] > 0

    def test_probe_entries_carry_slo_verdicts(self, report):
        for entry in report["probes"] + [report["overload"]]:
            assert isinstance(entry["sustainable"], bool)
            assert entry["slo"]["objectives"]
            assert entry["sojourn_p99_ns"] >= 0

    def test_formatter_renders(self, report):
        text = format_loadtest(report)
        assert "probe ladder" in text
        assert "max sustainable" in text


class TestArtifact:
    def test_same_inputs_byte_identical(self, tmp_path, report):
        again = tiny_loadtest()
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_loadtest(report, str(first))
        write_loadtest(again, str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_trailing_newline_and_sorted_keys(self, tmp_path, report):
        path = tmp_path / "lt.json"
        write_loadtest(report, str(path))
        text = path.read_text()
        assert text.endswith("\n")
        import json

        assert json.loads(text) == report


class TestLoadSummaryFormatter:
    def test_renders_overload_run(self, report):
        # Rebuild a load dict from the overload probe's source run shape:
        # format_load_summary consumes LoadStats.as_dict, exercised via
        # the openloop tests; here just check it rejects nothing basic.
        from repro.config import LoadParams, make_cluster_config
        from repro.runner import run_experiment

        config = make_cluster_config("default").replace(
            load=LoadParams(enabled=True, rate_tps=8_000_000.0))
        result = run_experiment(
            "hades", make_workload("HT-wB", scale=0.05), config=config,
            duration_ns=60_000.0, seed=42)
        text = format_load_summary(result.load)
        assert "open-loop load" in text
        assert "sojourn p99" in text
