"""Open-loop runs end to end: wiring, determinism, warmup, spans, SLO."""

import dataclasses

import pytest

from repro.config import LoadParams, make_cluster_config
from repro.obs.slo import SLOParams
from repro.obs.spans import SpanRecorder, validate_spans
from repro.runner import run_experiment
from repro.workloads import make_workload


def open_loop_run(rate_tps=2_000_000.0, duration_ns=100_000.0,
                  warmup_ns=0.0, seed=42, spans=None, load=None, slo=None):
    config = make_cluster_config("default")
    params = load if load is not None else LoadParams(enabled=True,
                                                     rate_tps=rate_tps)
    config = config.replace(load=params)
    if slo:
        config = config.replace(slo=SLOParams.parse(slo))
    return run_experiment("hades", make_workload("HT-wB", scale=0.05),
                          config=config, duration_ns=duration_ns,
                          warmup_ns=warmup_ns, seed=seed, spans=spans)


class TestWiring:
    def test_load_summary_populated(self):
        result = open_loop_run()
        load = result.load
        assert load is not None
        assert load["offered"] > 0
        assert load["admitted"] <= load["offered"]
        assert load["completed"] > 0
        assert set(load["max_queue_depth"]) == {
            str(node) for node in range(make_cluster_config("default").nodes)}
        # Conservation: every offered job was admitted or shed.
        assert load["admitted"] + load["shed_total"] == load["offered"]

    def test_closed_loop_has_no_load_summary(self):
        result = run_experiment("hades", make_workload("HT-wB", scale=0.05),
                                duration_ns=100_000.0, seed=42)
        assert result.load is None

    def test_goodput_counts_only_committed(self):
        result = open_loop_run()
        assert result.metrics.meter.committed == result.load["completed"]

    @pytest.mark.parametrize("arrival", ["poisson", "bursty", "diurnal"])
    def test_every_arrival_process_runs(self, arrival):
        load = LoadParams(enabled=True, rate_tps=2_000_000.0,
                          arrival=arrival)
        result = open_loop_run(load=load)
        assert result.load["completed"] > 0

    @pytest.mark.parametrize("policy", ["fifo", "lifo", "deadline"])
    def test_every_shed_policy_runs(self, policy):
        load = LoadParams(enabled=True, rate_tps=6_000_000.0,
                          shed_policy=policy)
        result = open_loop_run(load=load)
        assert result.load["completed"] > 0


class TestDeterminism:
    def test_same_seed_identical_load_summary(self):
        first = open_loop_run(rate_tps=4_000_000.0)
        second = open_loop_run(rate_tps=4_000_000.0)
        assert first.load == second.load
        assert first.metrics.summary() == second.metrics.summary()

    def test_different_seed_differs(self):
        first = open_loop_run(seed=42)
        second = open_loop_run(seed=43)
        assert first.load != second.load


class TestWarmup:
    def test_warmup_trims_offered_window(self):
        full = open_loop_run(duration_ns=100_000.0)
        trimmed = open_loop_run(duration_ns=50_000.0, warmup_ns=50_000.0)
        # Same total simulated time; the trimmed run only counts the
        # measured half.
        assert 0 < trimmed.load["offered"] < full.load["offered"]

    def test_warmup_keeps_system_state(self):
        # Jobs admitted during warmup may complete in the measured
        # window: completed can legitimately exceed admitted.
        result = open_loop_run(duration_ns=50_000.0, warmup_ns=50_000.0)
        assert result.load["completed"] > 0


class TestSpansAndSlo:
    def test_sheds_enter_span_taxonomy(self):
        recorder = SpanRecorder()
        load = LoadParams(enabled=True, rate_tps=10_000_000.0,
                          queue_capacity=8)
        result = open_loop_run(load=load, spans=recorder)
        assert result.load["shed_total"] > 0
        validate_spans(recorder.as_dict())
        assert recorder.abort_class_totals().get("shed", 0) \
            == result.load["shed_total"]

    def test_slo_evaluates_sojourn(self):
        result = open_loop_run(rate_tps=500_000.0, slo="p99<1000us")
        assert result.slo is not None
        assert result.slo.passed
        # The SLO consumed the sojourn histogram, not service latency.
        assert result.slo.samples == result.load["completed"]


class TestConfigParse:
    def test_cli_spec_round_trip(self):
        params = LoadParams.parse(
            "rate=2e6,arrival=bursty,policy=deadline,capacity=128")
        assert params.enabled
        assert params.rate_tps == 2_000_000.0
        assert params.arrival == "bursty"
        assert params.shed_policy == "deadline"
        assert params.queue_capacity == 128

    def test_off_spec_disables(self):
        assert not LoadParams.parse("off").enabled

    def test_disabled_by_default(self):
        assert not make_cluster_config("default").load.enabled
        assert not dataclasses.replace(LoadParams()).enabled
