"""Pinned-seed sustained-overload regression (the graceful-degradation
contract): at 2x measured closed-loop capacity the system must keep
queues bounded, shed nonzero traffic, and keep committing — no
metastable livelock — with and without a NIC-stall fault plan."""

import pytest

from repro.config import FaultPlan, LoadParams, make_cluster_config
from repro.runner import run_experiment
from repro.workloads import make_workload

SEED = 42
DURATION_NS = 120_000.0
WARMUP_NS = 30_000.0
QUEUE_CAPACITY = 64


def _run(config, fault_plan=None):
    return run_experiment("hades", make_workload("HT-wB", scale=0.05),
                          config=config, duration_ns=DURATION_NS,
                          warmup_ns=WARMUP_NS, seed=SEED,
                          fault_plan=fault_plan)


@pytest.fixture(scope="module")
def capacity_tps():
    """Measured closed-loop capacity of the pinned scenario."""
    result = _run(make_cluster_config("default"))
    assert result.throughput > 0
    return result.throughput


def overload_config(capacity_tps):
    return make_cluster_config("default").replace(load=LoadParams(
        enabled=True, rate_tps=2.0 * capacity_tps,
        queue_capacity=QUEUE_CAPACITY))


class TestSustainedOverload:
    def test_graceful_degradation_at_2x_capacity(self, capacity_tps):
        result = _run(overload_config(capacity_tps))
        load = result.load
        # No livelock: the system keeps committing under 2x overload...
        assert load["completed"] > 0
        # ... at a goodput close to its measured capacity.
        assert result.throughput >= 0.8 * capacity_tps
        # The excess offered load is shed, not queued.
        assert load["shed_total"] > 0
        assert load["loss_rate"] > 0.2
        for depth in load["max_queue_depth"].values():
            assert depth <= QUEUE_CAPACITY
        # Degradation engaged (that's where the sheds came from).
        assert load["degraded_transitions"] > 0

    def test_overload_run_is_deterministic(self, capacity_tps):
        config = overload_config(capacity_tps)
        first = _run(config)
        second = _run(config)
        assert first.load == second.load
        assert first.metrics.summary() == second.metrics.summary()

    def test_overload_survives_nic_stall(self, capacity_tps):
        # A NIC stall on node 1 inside the measured window on top of 2x
        # overload: queues must stay bounded and commits must continue.
        plan = FaultPlan.parse("stall=1:60000:90000", seed=7)
        result = _run(overload_config(capacity_tps), fault_plan=plan)
        load = result.load
        assert load["completed"] > 0
        assert load["shed_total"] > 0
        for depth in load["max_queue_depth"].values():
            assert depth <= QUEUE_CAPACITY

    def test_nic_stall_run_is_deterministic(self, capacity_tps):
        config = overload_config(capacity_tps)
        runs = [_run(config, fault_plan=FaultPlan.parse(
            "stall=1:60000:90000", seed=7)) for _ in range(2)]
        assert runs[0].load == runs[1].load

    def test_retry_budget_bounds_attempts(self, capacity_tps):
        # With a tiny budget the retry storm is cut off: abandons are
        # reported and the run still makes progress.
        config = make_cluster_config("default").replace(load=LoadParams(
            enabled=True, rate_tps=2.0 * capacity_tps,
            queue_capacity=QUEUE_CAPACITY, retry_budget_fraction=0.001,
            retry_burst=1.0, max_attempts=2))
        result = _run(config)
        assert result.load["completed"] > 0
        assert result.load["retry_denied"] > 0
