"""Tests for the network fabric."""

import pytest

from repro.config import NetworkParams
from repro.net.fabric import _FIFO_SPACING_NS, Fabric, RequestReplyHelper
from repro.net.messages import HEADER_BYTES, Message
from repro.sim import Engine

OWNER = (0, 1)


class _PassthroughFaults:
    """Minimal injector stand-in: never drops, never delays.

    Attaching it activates the per-pair FIFO floor (maintained only
    while faults are active) without perturbing any delivery time."""

    def message_fate(self, src, dst, message, now):
        return None, 0.0


class _Weightless(Message):
    """Zero serialization time: same-instant sends tie on delivery."""

    def size_bytes(self):
        return 0


def make_fabric(engine, **overrides):
    fabric = Fabric(engine, NetworkParams(**overrides))
    return fabric


def test_delivery_invokes_handler_after_one_way_latency():
    engine = Engine()
    fabric = make_fabric(engine)
    received = []
    fabric.register(1, lambda src, msg: received.append((engine.now, src, msg)))
    message = Message(OWNER)
    fabric.send(0, 1, message)
    engine.run()
    assert len(received) == 1
    when, src, delivered = received[0]
    expected = (1000.0  # one-way
                + NetworkParams().transfer_ns(HEADER_BYTES)
                + NetworkParams().nic_processing_ns)
    assert when == pytest.approx(expected)
    assert src == 0 and delivered is message


def test_send_returns_delivery_event():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)
    results = []

    def waiter():
        message = yield fabric.send(0, 1, Message(OWNER))
        results.append((engine.now, message))

    engine.process(waiter())
    engine.run()
    assert len(results) == 1
    assert results[0][0] > 1000.0


def test_generator_handler_spawned_as_process():
    engine = Engine()
    fabric = make_fabric(engine)
    trace = []

    def handler(src, msg):
        yield 500.0
        trace.append(engine.now)

    fabric.register(1, handler)
    fabric.send(0, 1, Message(OWNER))
    engine.run()
    assert len(trace) == 1
    assert trace[0] > 1500.0


def test_egress_serialization_queues_large_messages():
    engine = Engine()
    fabric = make_fabric(engine)
    arrivals = []
    fabric.register(1, lambda src, msg: arrivals.append(engine.now))

    class Big(Message):
        def size_bytes(self):
            return 25000  # 1000 ns of serialization at 25 B/ns

    fabric.send(0, 1, Big(OWNER))
    fabric.send(0, 1, Big(OWNER))
    engine.run()
    assert arrivals[1] - arrivals[0] == pytest.approx(1000.0)


def test_different_senders_do_not_serialize():
    engine = Engine()
    fabric = make_fabric(engine)
    arrivals = []
    fabric.register(2, lambda src, msg: arrivals.append(engine.now))

    class Big(Message):
        def size_bytes(self):
            return 25000

    fabric.send(0, 2, Big(OWNER))
    fabric.send(1, 2, Big((1, 2)))
    engine.run()
    assert arrivals[0] == pytest.approx(arrivals[1])


def test_self_send_rejected():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(0, lambda src, msg: None)
    with pytest.raises(ValueError):
        fabric.send(0, 0, Message(OWNER))


def test_unregistered_destination_rejected():
    engine = Engine()
    fabric = make_fabric(engine)
    with pytest.raises(KeyError):
        fabric.send(0, 99, Message(OWNER))


def test_duplicate_registration_rejected():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)
    with pytest.raises(ValueError):
        fabric.register(1, lambda src, msg: None)


def test_traffic_accounting():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)
    fabric.send(0, 1, Message(OWNER))
    assert fabric.messages_sent == 1
    assert fabric.bytes_sent == HEADER_BYTES


def test_egress_backlog_visible():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)

    class Big(Message):
        def size_bytes(self):
            return 25000

    fabric.send(0, 1, Big(OWNER))
    assert fabric.egress_backlog_ns(0) == pytest.approx(1000.0)
    assert fabric.egress_backlog_ns(5) == 0.0


def test_fifo_floor_10k_burst_spacing_is_exact():
    """Regression: the FIFO floor must not accumulate float residue.

    10 000 same-instant sends on one pair each get bumped strictly
    after the last.  The k-th delivery must land at *exactly*
    ``anchor + k * spacing``: the old floor update added the spacing
    once per message, and 10 000 repeated additions of 1e-3 drift away
    from the product, making delivery times depend on burst history."""
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.faults = _PassthroughFaults()
    arrivals = []
    fabric.register(1, lambda src, msg: arrivals.append(engine.now))
    for _ in range(10_000):
        fabric.send(0, 1, _Weightless(OWNER))
    engine.run()
    assert len(arrivals) == 10_000
    anchor = arrivals[0]
    for k, when in enumerate(arrivals):
        assert when == anchor + k * _FIFO_SPACING_NS  # bit-exact
    anchor_state, bumps = fabric._pair_floor[(0, 1)]
    assert anchor_state == anchor and bumps == 9_999


def test_fifo_floor_resets_after_natural_gap():
    """A send that lands naturally after the floor re-anchors the pair
    instead of extending the bump chain."""
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.faults = _PassthroughFaults()
    arrivals = []
    fabric.register(1, lambda src, msg: arrivals.append(engine.now))

    def burst():
        fabric.send(0, 1, _Weightless(OWNER))
        fabric.send(0, 1, _Weightless(OWNER))  # tied -> bumped
        yield 10_000.0
        fabric.send(0, 1, _Weightless(OWNER))  # past the floor

    engine.process(burst())
    engine.run()
    assert arrivals[1] == arrivals[0] + _FIFO_SPACING_NS
    assert arrivals[2] > arrivals[1]
    _, bumps = fabric._pair_floor[(0, 1)]
    assert bumps == 0  # re-anchored


class TestRequestReplyHelper:
    def test_expect_then_resolve(self):
        engine = Engine()
        helper = RequestReplyHelper(engine)
        results = []

        def waiter():
            value = yield helper.expect("token")
            results.append(value)

        engine.process(waiter())
        engine.schedule(10.0, helper.resolve, "token", "reply")
        engine.run()
        assert results == ["reply"]

    def test_duplicate_token_rejected(self):
        helper = RequestReplyHelper(Engine())
        helper.expect("t")
        with pytest.raises(ValueError):
            helper.expect("t")

    def test_late_resolve_dropped(self):
        helper = RequestReplyHelper(Engine())
        helper.resolve("never-expected")  # must not raise

    def test_abandon(self):
        helper = RequestReplyHelper(Engine())
        helper.expect("t")
        helper.abandon("t")
        assert helper.outstanding == 0
        helper.resolve("t")  # dropped silently

    def test_abandon_owner_clears_matching_tokens(self):
        helper = RequestReplyHelper(Engine())
        helper.expect(((0, 7), "lock", 1))
        helper.expect(((0, 7), "lock", 2))
        helper.expect(((0, 8), "lock", 1))
        helper.abandon_owner((0, 7))
        assert helper.outstanding == 1

    def test_resolve_cancels_pending_timer(self):
        engine = Engine()
        helper = RequestReplyHelper(engine, default_timeout_ns=100.0)
        helper.expect("t")
        helper.resolve("t", "reply")
        assert not helper._timers
        engine.run()
        assert helper.timeout_count == 0

    def test_abandon_cancels_pending_timer(self):
        engine = Engine()
        helper = RequestReplyHelper(engine, default_timeout_ns=100.0)
        helper.expect("t")
        helper.abandon("t")
        assert not helper._timers
        engine.run()
        assert helper.timeout_count == 0

    def test_abandon_owner_cancels_pending_timers(self):
        engine = Engine()
        helper = RequestReplyHelper(engine, default_timeout_ns=100.0)
        helper.expect(((0, 7), "lock", 1))
        helper.expect(((0, 8), "lock", 1))
        helper.abandon_owner((0, 7))
        assert set(helper._timers) == {((0, 8), "lock", 1)}

    def test_timeout_still_fires_when_unresolved(self):
        engine = Engine()
        helper = RequestReplyHelper(engine, default_timeout_ns=100.0)
        results = []

        def waiter():
            value = yield helper.expect("t")
            results.append((engine.now, value))

        engine.process(waiter())
        engine.run()
        assert helper.timeout_count == 1
        assert results and results[0][0] == 100.0
        assert not results[0][1]  # TIMED_OUT is falsy

    def test_retry_storm_does_not_grow_engine_queue(self):
        """Regression: before timer cancellation, every resolved
        request left its (far-future) timeout entry in the engine heap;
        a retry storm grew the heap by one husk per request."""
        engine = Engine()
        helper = RequestReplyHelper(engine, default_timeout_ns=1e9)
        for i in range(10_000):
            helper.expect(i)
            helper.resolve(i, "ack")
        assert helper.outstanding == 0
        assert not helper._timers
        # Compaction keeps the heap bounded, not 10 000 dead timers.
        assert len(engine._queue) <= 150
