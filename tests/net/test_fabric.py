"""Tests for the network fabric."""

import pytest

from repro.config import NetworkParams
from repro.net.fabric import Fabric, RequestReplyHelper
from repro.net.messages import HEADER_BYTES, Message
from repro.sim import Engine

OWNER = (0, 1)


def make_fabric(engine, **overrides):
    fabric = Fabric(engine, NetworkParams(**overrides))
    return fabric


def test_delivery_invokes_handler_after_one_way_latency():
    engine = Engine()
    fabric = make_fabric(engine)
    received = []
    fabric.register(1, lambda src, msg: received.append((engine.now, src, msg)))
    message = Message(OWNER)
    fabric.send(0, 1, message)
    engine.run()
    assert len(received) == 1
    when, src, delivered = received[0]
    expected = (1000.0  # one-way
                + NetworkParams().transfer_ns(HEADER_BYTES)
                + NetworkParams().nic_processing_ns)
    assert when == pytest.approx(expected)
    assert src == 0 and delivered is message


def test_send_returns_delivery_event():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)
    results = []

    def waiter():
        message = yield fabric.send(0, 1, Message(OWNER))
        results.append((engine.now, message))

    engine.process(waiter())
    engine.run()
    assert len(results) == 1
    assert results[0][0] > 1000.0


def test_generator_handler_spawned_as_process():
    engine = Engine()
    fabric = make_fabric(engine)
    trace = []

    def handler(src, msg):
        yield 500.0
        trace.append(engine.now)

    fabric.register(1, handler)
    fabric.send(0, 1, Message(OWNER))
    engine.run()
    assert len(trace) == 1
    assert trace[0] > 1500.0


def test_egress_serialization_queues_large_messages():
    engine = Engine()
    fabric = make_fabric(engine)
    arrivals = []
    fabric.register(1, lambda src, msg: arrivals.append(engine.now))

    class Big(Message):
        def size_bytes(self):
            return 25000  # 1000 ns of serialization at 25 B/ns

    fabric.send(0, 1, Big(OWNER))
    fabric.send(0, 1, Big(OWNER))
    engine.run()
    assert arrivals[1] - arrivals[0] == pytest.approx(1000.0)


def test_different_senders_do_not_serialize():
    engine = Engine()
    fabric = make_fabric(engine)
    arrivals = []
    fabric.register(2, lambda src, msg: arrivals.append(engine.now))

    class Big(Message):
        def size_bytes(self):
            return 25000

    fabric.send(0, 2, Big(OWNER))
    fabric.send(1, 2, Big((1, 2)))
    engine.run()
    assert arrivals[0] == pytest.approx(arrivals[1])


def test_self_send_rejected():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(0, lambda src, msg: None)
    with pytest.raises(ValueError):
        fabric.send(0, 0, Message(OWNER))


def test_unregistered_destination_rejected():
    engine = Engine()
    fabric = make_fabric(engine)
    with pytest.raises(KeyError):
        fabric.send(0, 99, Message(OWNER))


def test_duplicate_registration_rejected():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)
    with pytest.raises(ValueError):
        fabric.register(1, lambda src, msg: None)


def test_traffic_accounting():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)
    fabric.send(0, 1, Message(OWNER))
    assert fabric.messages_sent == 1
    assert fabric.bytes_sent == HEADER_BYTES


def test_egress_backlog_visible():
    engine = Engine()
    fabric = make_fabric(engine)
    fabric.register(1, lambda src, msg: None)

    class Big(Message):
        def size_bytes(self):
            return 25000

    fabric.send(0, 1, Big(OWNER))
    assert fabric.egress_backlog_ns(0) == pytest.approx(1000.0)
    assert fabric.egress_backlog_ns(5) == 0.0


class TestRequestReplyHelper:
    def test_expect_then_resolve(self):
        engine = Engine()
        helper = RequestReplyHelper(engine)
        results = []

        def waiter():
            value = yield helper.expect("token")
            results.append(value)

        engine.process(waiter())
        engine.schedule(10.0, helper.resolve, "token", "reply")
        engine.run()
        assert results == ["reply"]

    def test_duplicate_token_rejected(self):
        helper = RequestReplyHelper(Engine())
        helper.expect("t")
        with pytest.raises(ValueError):
            helper.expect("t")

    def test_late_resolve_dropped(self):
        helper = RequestReplyHelper(Engine())
        helper.resolve("never-expected")  # must not raise

    def test_abandon(self):
        helper = RequestReplyHelper(Engine())
        helper.expect("t")
        helper.abandon("t")
        assert helper.outstanding == 0
        helper.resolve("t")  # dropped silently

    def test_abandon_owner_clears_matching_tokens(self):
        helper = RequestReplyHelper(Engine())
        helper.expect(((0, 7), "lock", 1))
        helper.expect(((0, 7), "lock", 2))
        helper.expect(((0, 8), "lock", 1))
        helper.abandon_owner((0, 7))
        assert helper.outstanding == 1
