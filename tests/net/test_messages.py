"""Tests for protocol message sizing."""

from repro.net.messages import (
    ADDRESS_BYTES,
    HEADER_BYTES,
    LINE_BYTES,
    AckMessage,
    BatchedLockRequest,
    IntendToCommitMessage,
    Message,
    RdmaReadRequest,
    RdmaReadResponse,
    RdmaWriteRequest,
    RemoteWriteAccessRequest,
    SquashMessage,
    ValidationMessage,
)

OWNER = (0, 1)


def test_base_message_is_header_only():
    assert Message(OWNER).size_bytes() == HEADER_BYTES
    assert Message(OWNER).origin_node == 0


def test_read_request_grows_with_lines():
    empty = RdmaReadRequest(OWNER)
    three = RdmaReadRequest(OWNER, lines=[1, 2, 3])
    assert three.size_bytes() - empty.size_bytes() == 3 * ADDRESS_BYTES


def test_read_response_carries_line_payload():
    response = RdmaReadResponse(OWNER, values={1: "a", 2: "b"})
    assert response.size_bytes() == HEADER_BYTES + 2 * LINE_BYTES


def test_write_request_carries_addresses_and_data():
    request = RdmaWriteRequest(OWNER, values={1: "a"})
    assert request.size_bytes() == HEADER_BYTES + ADDRESS_BYTES + LINE_BYTES


def test_intend_to_commit_lists_written_lines():
    message = IntendToCommitMessage(OWNER, written_lines=[5, 6])
    assert message.size_bytes() == HEADER_BYTES + 2 * ADDRESS_BYTES


def test_validation_carries_updates():
    message = ValidationMessage(OWNER, updates={5: "x"})
    assert message.size_bytes() == HEADER_BYTES + ADDRESS_BYTES + LINE_BYTES


def test_ack_and_squash_are_small():
    assert AckMessage(OWNER).size_bytes() == HEADER_BYTES
    assert SquashMessage(OWNER, victim=(1, 2)).size_bytes() == HEADER_BYTES


def test_remote_write_access_sized_by_all_lines():
    message = RemoteWriteAccessRequest(OWNER, all_lines=[1, 2, 3],
                                       partial_lines=[1])
    assert message.size_bytes() == HEADER_BYTES + 3 * ADDRESS_BYTES


def test_batched_lock_sized_by_records():
    message = BatchedLockRequest(OWNER, record_addresses=[10, 20, 30, 40])
    assert message.size_bytes() == HEADER_BYTES + 4 * ADDRESS_BYTES
