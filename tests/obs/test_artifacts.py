"""Tests for per-worker artifact paths and reader-side glob expansion."""

import pytest

from repro.obs.artifacts import (
    expand_artifact_globs,
    is_glob,
    sanitize_tag,
    tagged_path,
)


class TestTaggedPath:
    def test_tag_lands_before_final_suffix(self):
        assert tagged_path("out.jsonl", "w3") == "out.w3.jsonl"
        assert tagged_path("dir/spans.json", "cell-0") == "dir/spans.cell-0.json"

    def test_no_suffix_appends_tag(self):
        assert tagged_path("spans", "cell-0") == "spans.cell-0"

    def test_tags_are_sanitized(self):
        assert tagged_path("out.json", "B+Tree-wB/s1") == "out.B-Tree-wB-s1.json"

    def test_distinct_tags_never_collide(self):
        tags = ["w0", "w1", "HT-wA.hades.s1", "HT-wA.hades.s2"]
        paths = {tagged_path("report.json", tag) for tag in tags}
        assert len(paths) == len(tags)


class TestSanitizeTag:
    def test_path_separators_collapse(self):
        assert sanitize_tag("a/b\\c d") == "a-b-c-d"

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            sanitize_tag("///")

    def test_leading_dots_stripped(self):
        assert ".." not in sanitize_tag("../etc")
        assert not sanitize_tag("../x").startswith(".")


class TestExpandArtifactGlobs:
    def test_literal_paths_pass_through(self, tmp_path):
        assert expand_artifact_globs(["a.json", "b.json"]) == ["a.json",
                                                              "b.json"]

    def test_glob_expands_sorted(self, tmp_path):
        for name in ("spans.b.json", "spans.a.json", "spans.c.json"):
            (tmp_path / name).write_text("{}")
        result = expand_artifact_globs([str(tmp_path / "spans.*.json")])
        assert [p.rsplit("/", 1)[1] for p in result] == [
            "spans.a.json", "spans.b.json", "spans.c.json"]

    def test_empty_glob_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            expand_artifact_globs([str(tmp_path / "nothing.*.json")])

    def test_is_glob(self):
        assert is_glob("spans.*.json")
        assert is_glob("spans.[ab].json")
        assert not is_glob("spans.a.json")
