"""LogHistogram: accuracy vs. the exact recorder, bounded memory."""

import pytest

from repro.obs.histogram import LogHistogram
from repro.sim.random import DeterministicRandom
from repro.sim.stats import LatencyRecorder


def test_rejects_negative_values():
    with pytest.raises(ValueError):
        LogHistogram().record(-1.0)


def test_rejects_bad_subbucket_bits():
    with pytest.raises(ValueError):
        LogHistogram(subbucket_bits=0)
    with pytest.raises(ValueError):
        LogHistogram(subbucket_bits=17)


def test_empty_histogram_reports_zeros():
    hist = LogHistogram()
    assert hist.count == 0
    assert hist.mean() == 0.0
    assert hist.percentile(0.5) == 0.0
    assert hist.p95() == 0.0


def test_small_values_are_exact():
    # Below one octave the buckets are unit-width: recorded values come
    # back exactly.  (The exact recorder interpolates between samples,
    # the histogram picks the ceiling-rank sample, so compare against
    # the sample list, not the interpolated quantile.)
    samples = [3, 17, 42, 99, 100, 101, 120]
    hist = LogHistogram()
    exact = LatencyRecorder()
    for value in samples:
        hist.record(float(value))
        exact.record(float(value))
    assert hist.mean() == exact.mean()
    assert hist.min() == 3.0
    assert hist.max() == 120.0
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        assert hist.percentile(fraction) in [float(v) for v in samples]
    assert hist.percentile(0.5) == exact.percentile(0.5) == 99.0


def test_mean_is_exact_at_any_scale():
    hist = LogHistogram()
    exact = LatencyRecorder()
    rng = DeterministicRandom("hist-mean")
    for _ in range(5000):
        value = rng.uniform(10.0, 5_000_000.0)
        hist.record(value)
        exact.record(value)
    assert hist.mean() == pytest.approx(exact.mean(), rel=1e-12)


def test_percentiles_within_quantization_vs_exact_recorder():
    """Acceptance bound: every percentile within 1% of the exact value.

    The design bound is 1 / 2**(subbucket_bits + 1) < 0.4% at the
    default 7 bits — assert the looser 1% the issue specifies.
    """
    hist = LogHistogram()
    exact = LatencyRecorder()
    rng = DeterministicRandom("hist-acc")
    # Latency-like mixture: a body around tens of microseconds and a
    # heavy tail into milliseconds, spanning many octaves.
    for _ in range(20000):
        if rng.uniform(0.0, 1.0) < 0.9:
            value = rng.uniform(5_000.0, 80_000.0)
        else:
            value = rng.uniform(80_000.0, 5_000_000.0)
        hist.record(value)
        exact.record(value)
    for fraction in (0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999):
        assert hist.percentile(fraction) == pytest.approx(
            exact.percentile(fraction), rel=0.01), f"p{fraction}"
    assert hist.p95() == pytest.approx(exact.p95(), rel=0.01)


def test_memory_is_bounded_by_buckets_not_samples():
    hist = LogHistogram()
    rng = DeterministicRandom("hist-mem")
    for _ in range(50000):
        hist.record(rng.uniform(0.0, 10_000_000.0))
    assert hist.count == 50000
    # 10M ns spans ~24 octaves x 128 sub-buckets as the ceiling; the
    # point is it does not scale with the 50k samples.
    assert hist.bucket_count < 24 * 128
    assert hist.bucket_count < hist.count / 10


def test_percentile_clamped_to_observed_range():
    hist = LogHistogram()
    hist.record(1_000_000.0)
    assert hist.percentile(0.0) == 1_000_000.0
    assert hist.percentile(1.0) == 1_000_000.0


def test_percentile_rejects_bad_fraction():
    hist = LogHistogram()
    hist.record(5.0)
    with pytest.raises(ValueError):
        hist.percentile(1.5)


def test_as_dict_round_numbers():
    hist = LogHistogram()
    for value in (1.0, 2.0, 300.0):
        hist.record(value)
    dump = hist.as_dict()
    assert dump["count"] == 3
    assert dump["sum"] == pytest.approx(303.0)
    assert dump["min"] == 1.0
    assert dump["max"] == 300.0
    assert sum(dump["buckets"].values()) == 3


# -- percentile edge cases (p99/p999 with few samples, empty) ------------

def test_p999_with_fewer_samples_than_buckets_is_the_max():
    # With n < 1000 samples the 99.9th percentile is the maximum by the
    # ceiling-rank convention — not an out-of-range bucket, not zero.
    hist = LogHistogram()
    for value in (10.0, 20.0, 30.0):
        hist.record(value)
    assert hist.p999() == 30.0
    assert hist.p99() == 30.0


def test_p99_p999_empty_histogram_zero():
    hist = LogHistogram()
    assert hist.p99() == 0.0
    assert hist.p999() == 0.0


def test_single_sample_every_percentile_is_that_sample():
    hist = LogHistogram()
    hist.record(77_000.0)
    for fraction in (0.01, 0.5, 0.99, 0.999):
        assert hist.percentile(fraction) == pytest.approx(77_000.0, rel=0.01)


# -- merge / from_dict (cross-run aggregation) ---------------------------

def test_merge_equals_recording_into_one():
    rng = DeterministicRandom("hist-merge")
    one = LogHistogram()
    left, right = LogHistogram(), LogHistogram()
    for index in range(2000):
        value = rng.uniform(1.0, 1_000_000.0)
        one.record(value)
        (left if index % 2 else right).record(value)
    left.merge(right)
    assert left.count == one.count
    assert left.mean() == pytest.approx(one.mean())
    assert left.min() == one.min()
    assert left.max() == one.max()
    for fraction in (0.5, 0.95, 0.99):
        assert left.percentile(fraction) == one.percentile(fraction)


def test_merge_empty_is_a_noop():
    hist = LogHistogram()
    hist.record(5.0)
    before = hist.as_dict()
    hist.merge(LogHistogram())
    assert hist.as_dict() == before


def test_merge_into_empty_keeps_min_usable():
    # The empty histogram's internal min sentinel must not leak.
    hist = LogHistogram()
    other = LogHistogram()
    other.record(42.0)
    hist.merge(other)
    assert hist.min() == 42.0
    hist.record(7.0)
    assert hist.min() == 7.0


def test_merge_rejects_mismatched_subbucket_bits():
    with pytest.raises(ValueError, match="subbucket_bits"):
        LogHistogram(subbucket_bits=7).merge(LogHistogram(subbucket_bits=6))


def test_merge_rejects_non_histogram():
    with pytest.raises(TypeError):
        LogHistogram().merge({"count": 1})


def test_from_dict_round_trip():
    hist = LogHistogram()
    rng = DeterministicRandom("hist-dump")
    for _ in range(500):
        hist.record(rng.uniform(10.0, 500_000.0))
    clone = LogHistogram.from_dict(hist.as_dict())
    assert clone.as_dict() == hist.as_dict()
    assert clone.percentile(0.99) == hist.percentile(0.99)
    # The clone keeps working as a live histogram.
    clone.record(1.0)
    assert clone.min() == 1.0


def test_from_dict_empty_round_trip_then_record():
    clone = LogHistogram.from_dict(LogHistogram().as_dict())
    assert clone.count == 0
    clone.record(9.0)
    assert clone.min() == 9.0
    assert clone.max() == 9.0


def test_from_dict_rejects_inconsistent_counts():
    dump = LogHistogram().as_dict()
    dump["count"] = 3
    with pytest.raises(ValueError):
        LogHistogram.from_dict(dump)
