"""repro profile: attribution report and its acceptance bound."""

import pytest

from repro.obs.profile import format_profile, profile_experiment
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def hades_report():
    return profile_experiment("hades", make_workload("HT-wA", scale=0.05),
                              duration_ns=100_000.0, seed=5, llc_sets=512)


class TestProfileReport:
    def test_phase_totals_agree_with_breakdown_within_1pct(self, hades_report):
        assert hades_report.committed > 0
        assert hades_report.phase_agreement <= 0.01

    def test_phase_totals_cover_protocol_phases(self, hades_report):
        # HADES transactions have execution + validation (no commit
        # phase — that work lives on the NIC).
        assert set(hades_report.phase_totals) == {"execution", "validation"}
        assert all(total > 0 for total in hades_report.phase_totals.values())

    def test_message_rows_populated(self, hades_report):
        assert hades_report.message_rows
        names = [row[0] for row in hades_report.message_rows]
        assert "RdmaReadRequest" in names
        deliveries = [row[5] for row in hades_report.message_rows]
        assert deliveries == sorted(deliveries, reverse=True)

    def test_baseline_has_commit_phase(self):
        report = profile_experiment("baseline",
                                    make_workload("HT-wA", scale=0.05),
                                    duration_ns=100_000.0, seed=5,
                                    llc_sets=512)
        assert "commit" in report.phase_totals
        assert report.phase_agreement <= 0.01


class TestRetryAttribution:
    """Pinned semantics: a transaction that retried N times counts once
    in completion stats and N+1 times in attempt stats."""

    def test_attempts_are_completions_plus_aborts_plus_inflight(
            self, hades_report):
        # One txn_begin per attempt: every attempt either committed,
        # aborted, or was still in flight when the clock stopped — and
        # at most one attempt per transaction slot can be in flight.
        meter = hades_report.result.metrics.meter
        assert hades_report.aborted == meter.aborted
        finished = hades_report.committed + hades_report.aborted
        config = hades_report.result.config
        slots = config.nodes * config.transactions_per_node
        assert finished <= hades_report.attempts <= finished + slots
        # The run must actually exercise retries for this to pin
        # anything.
        assert hades_report.aborted > 0
        assert hades_report.commits_after_retry > 0

    def test_retried_commits_counted_once_in_completion_stats(
            self, hades_report):
        # Every commit-after-retry is one committed transaction — the
        # retries live in `attempts`, never in `committed`.
        assert hades_report.commits_after_retry <= hades_report.committed
        assert (hades_report.result.metrics.latency.count
                == hades_report.committed)

    def test_header_reports_attempt_stats(self, hades_report):
        text = format_profile(hades_report)
        assert f"{hades_report.attempts} attempts" in text
        assert f"({hades_report.commits_after_retry} after retry)" in text


class TestFormatting:
    def test_format_profile_renders_tables(self, hades_report):
        text = format_profile(hades_report)
        assert "phase attribution" in text
        assert "message attribution" in text
        assert "execution" in text
        assert "worst deviation" in text

    def test_empty_report_renders_placeholders(self):
        report = profile_experiment("hades",
                                    make_workload("HT-wA", scale=0.05),
                                    duration_ns=10.0, seed=5, llc_sets=512)
        text = format_profile(report)
        assert "(no committed transactions)" in text


class TestCli:
    def test_profile_subcommand(self, capsys):
        from repro.cli import main

        code = main(["profile", "--protocol", "hades", "--workload", "ycsb",
                     "--scale", "0.05", "--duration-us", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase attribution" in out
        assert "message attribution" in out
