"""TimeSeriesSampler and MessageStats collection."""

import pytest

from repro.obs.metrics import (
    SAMPLE_COLUMNS,
    MessageStats,
    TimeSeriesSampler,
    save_samples_csv,
)
from repro.runner import run_experiment
from repro.workloads import make_workload


def sampled_run(**kwargs):
    defaults = dict(duration_ns=100_000.0, seed=9, llc_sets=512,
                    sample_interval_ns=10_000.0)
    defaults.update(kwargs)
    return run_experiment("hades", make_workload("HT-wA", scale=0.05),
                          **defaults)


class TestSampler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(0.0)

    def test_one_row_per_interval(self):
        result = sampled_run()
        # 100 us at 10 us per sample: 10 rows (first at t=10us).
        assert len(result.samples) == 10
        times = [sample.t_ns for sample in result.samples]
        assert times == sorted(times)
        assert times[0] == pytest.approx(10_000.0)
        assert times[-1] == pytest.approx(100_000.0)

    def test_cumulative_counts_monotonic_and_match_final(self):
        result = sampled_run()
        committed = [sample.committed for sample in result.samples]
        assert committed == sorted(committed)
        assert committed[-1] == result.metrics.meter.committed

    def test_windowed_throughput_reflects_window_commits(self):
        result = sampled_run()
        first, second = result.samples[0], result.samples[1]
        window_commits = second.committed - first.committed
        assert second.throughput_tps == pytest.approx(
            window_commits * 1e9 / 10_000.0)

    def test_gauges_are_sane(self):
        result = sampled_run()
        for sample in result.samples:
            assert sample.inflight_txns >= 0
            assert sample.nic_remote_tx >= 0
            assert sample.lock_buffers_in_use >= 0
            assert 0.0 <= sample.bf_fill_ratio <= 1.0
            assert 0.0 <= sample.abort_rate <= 1.0
        # A running HADES cluster should show some hardware occupancy.
        assert any(sample.nic_remote_tx > 0 for sample in result.samples)

    def test_sampler_starts_after_warmup(self):
        result = sampled_run(warmup_ns=50_000.0)
        assert result.samples[0].t_ns == pytest.approx(60_000.0)
        assert len(result.samples) == 10

    def test_csv_round_trip(self, tmp_path):
        result = sampled_run()
        path = str(tmp_path / "series.csv")
        save_samples_csv(result.samples, path)
        lines = open(path).read().splitlines()
        assert lines[0] == ",".join(SAMPLE_COLUMNS)
        assert len(lines) == 1 + len(result.samples)
        first = lines[1].split(",")
        assert len(first) == len(SAMPLE_COLUMNS)
        assert float(first[0]) == pytest.approx(10_000.0)

    def test_no_sampling_by_default(self):
        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                duration_ns=30_000.0, seed=9, llc_sets=512)
        assert result.samples is None


class TestMessageStats:
    def test_aggregates_per_type(self):
        stats = MessageStats()
        stats.record("Read", 64, 1.0, 2.0, 10.0)
        stats.record("Read", 64, 3.0, 2.0, 12.0)
        stats.record("Ack", 16, 0.0, 1.0, 5.0)
        per_type = stats.by_type()
        assert per_type["Read"].count == 2
        assert per_type["Read"].bytes == 128
        assert per_type["Read"].queue_ns == pytest.approx(4.0)
        assert stats.total_messages == 3

    def test_rows_sorted_by_total_delivery(self):
        stats = MessageStats()
        stats.record("Small", 16, 0.0, 1.0, 5.0)
        stats.record("Big", 1024, 0.0, 50.0, 500.0)
        rows = stats.rows()
        assert [row[0] for row in rows] == ["Big", "Small"]

    def test_collected_from_fabric(self):
        stats = MessageStats()
        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                duration_ns=50_000.0, seed=9, llc_sets=512,
                                message_stats=stats)
        assert result.message_stats is stats
        assert stats.total_messages > 0
        for _, count, size, queue, wire, delivery, dropped in stats.rows():
            assert count > 0 and size > 0
            assert queue >= 0.0 and wire > 0.0 and delivery > 0.0
            assert dropped == 0  # no fault plan attached


class TestBoundedLatency:
    def test_bounded_latency_survives_warmup_reset(self):
        from repro.obs.histogram import LogHistogram

        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                duration_ns=50_000.0, warmup_ns=20_000.0,
                                seed=9, llc_sets=512, bounded_latency=True)
        assert isinstance(result.metrics.latency, LogHistogram)
        assert result.metrics.latency.count == result.metrics.meter.committed

    def test_bounded_and_exact_agree_on_summary(self):
        exact = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                               duration_ns=50_000.0, seed=9, llc_sets=512)
        bounded = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                 duration_ns=50_000.0, seed=9, llc_sets=512,
                                 bounded_latency=True)
        assert (bounded.metrics.meter.committed
                == exact.metrics.meter.committed)
        assert bounded.mean_latency_ns == pytest.approx(
            exact.mean_latency_ns, rel=1e-9)
        # p95 tolerance is dominated by rank-vs-interpolation on a small
        # sample (~100 commits), not histogram quantization; the tight
        # accuracy bound lives in test_histogram.py with 20k samples.
        assert bounded.p95_latency_ns == pytest.approx(
            exact.p95_latency_ns, rel=0.05)
