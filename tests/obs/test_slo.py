"""SLO declaration, parsing, evaluation, and runner integration."""

import pytest

from repro.config import ClusterConfig
from repro.obs.histogram import LogHistogram
from repro.obs.slo import SLOObjective, SLOParams, format_slo
from repro.runner import run_experiment
from repro.sim.stats import LatencyRecorder
from repro.workloads import make_workload


class TestParse:
    def test_single_clause(self):
        params = SLOParams.parse("p99<20us")
        assert params.enabled
        (objective,) = params.objectives
        assert objective.metric == "p99"
        assert objective.threshold_ns == 20_000.0

    def test_multiple_clauses_and_units(self):
        params = SLOParams.parse("p50 < 5us, mean<2000ns, p999<1ms")
        assert [o.metric for o in params.objectives] == ["p50", "mean", "p999"]
        assert [o.threshold_ns for o in params.objectives] == [
            5_000.0, 2_000.0, 1_000_000.0]

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            SLOParams.parse("p42<20us")

    def test_rejects_bad_syntax(self):
        for spec in ("p99>20us", "p99<20", "p99<us", "banana", ""):
            with pytest.raises(ValueError):
                SLOParams.parse(spec)

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError):
            SLOObjective("p99", 0.0)

    def test_default_params_disabled(self):
        assert not SLOParams().enabled


class TestEvaluate:
    def _recorder(self, values):
        recorder = LatencyRecorder()
        for value in values:
            recorder.record(value)
        return recorder

    def test_pass_and_fail_rows(self):
        recorder = self._recorder([1_000.0] * 99 + [100_000.0])
        params = SLOParams.parse("p50<5us,p999<5us")
        report = params.evaluate(recorder)
        by_metric = {row.metric: row for row in report.rows}
        assert by_metric["p50"].passed
        assert not by_metric["p999"].passed
        assert not report.passed
        assert report.samples == 100

    def test_empty_recorder_fails_not_vacuously_passes(self):
        report = SLOParams.parse("p99<20us").evaluate(LatencyRecorder())
        assert not report.passed
        assert report.samples == 0

    def test_works_against_log_histogram(self):
        hist = LogHistogram()
        for _ in range(100):
            hist.record(3_000.0)
        report = SLOParams.parse("p99<5us,mean<5us").evaluate(hist)
        assert report.passed

    def test_as_dict_shape(self):
        report = SLOParams.parse("mean<1us").evaluate(
            self._recorder([500.0]))
        dump = report.as_dict()
        assert dump["passed"] is True
        assert dump["objectives"][0]["metric"] == "mean"

    def test_format_slo_renders_verdicts(self):
        report = SLOParams.parse("p50<1ns").evaluate(
            self._recorder([500.0]))
        text = "\n".join(format_slo(report))
        assert "FAIL" in text
        assert "overall: FAIL" in text


class TestRunnerIntegration:
    def test_config_slo_evaluated_on_result(self):
        config = ClusterConfig(slo=SLOParams.parse("p99<100ms"))
        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                config=config, duration_ns=60_000.0,
                                seed=7, llc_sets=512)
        assert result.slo is not None
        assert result.slo.passed
        assert result.slo.samples == result.metrics.meter.committed

    def test_failing_slo_reported_not_raised(self):
        config = ClusterConfig(slo=SLOParams.parse("p50<1ns"))
        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                config=config, duration_ns=60_000.0,
                                seed=7, llc_sets=512)
        assert result.slo is not None
        assert not result.slo.passed

    def test_no_slo_means_none(self):
        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                duration_ns=30_000.0, seed=7, llc_sets=512)
        assert result.slo is None
