"""Transaction-lifecycle spans: taxonomy, recorder, wiring, determinism."""

import pytest

from repro.config import ClusterConfig, FaultPlan, RecoveryParams
from repro.obs.histogram import LogHistogram
from repro.obs.spans import (
    ABORT_CLASSES,
    ABORT_UNKNOWN,
    SPAN_PHASES,
    SpanRecorder,
    classify_abort,
    format_spans,
    validate_spans,
)
from repro.runner import run_experiment
from repro.workloads import make_workload
from repro.workloads.micro import MicroWorkload


def span_run(protocol="hades", duration_ns=100_000.0, seed=5, **kwargs):
    recorder = SpanRecorder()
    result = run_experiment(protocol, make_workload("HT-wA", scale=0.05),
                            duration_ns=duration_ns, seed=seed, llc_sets=512,
                            spans=recorder, **kwargs)
    return recorder, result


class TestClassifyAbort:
    def test_every_known_reason_classifies_out_of_unknown(self):
        reasons = [
            "eager_ll_read", "eager_ll_write", "eager_ll_write_vs_reader",
            "llc_eviction", "blocked_timeout", "request_timeout",
            "dirlock_local", "dirlock_remote", "ack_timeout",
            "footprint_miss", "read_retries_exhausted",
            "lock_conflict_local", "lock_conflict_remote", "lock_timeout",
            "validation_conflict_local", "validation_conflict_remote",
            "validation_timeout", "local_validation", "replica_failure",
            "replica_timeout", "node_crash",
        ]
        for reason in reasons:
            assert classify_abort(reason) in ABORT_CLASSES
            assert classify_abort(reason) != ABORT_UNKNOWN, reason

    def test_delivered_squash_suffixes(self):
        for reason in ("lazy_rr", "lazy_lr", "lazy_home_rr", "lazy_home_lr",
                       "pessimistic_rr", "pessimistic_lr"):
            assert classify_abort(reason) == "lr_conflict"

    def test_squashed_during_commit_consults_delivered_reason(self):
        assert classify_abort("squashed_during_commit",
                              "llc_eviction") == "capacity"
        assert classify_abort("squashed_during_commit",
                              "lazy_rr") == "lr_conflict"
        # No recorded cause: only a remote conflict check can have sent it.
        assert classify_abort("squashed_during_commit") == "lr_conflict"

    def test_bare_interrupt_without_cause_is_unknown(self):
        assert classify_abort("interrupt") == ABORT_UNKNOWN
        assert classify_abort("interrupt", "eager_ll_read") == "ll_conflict"

    def test_novel_reason_is_unknown(self):
        assert classify_abort("cosmic_ray") == ABORT_UNKNOWN


class TestSpanRecorder:
    def test_attempt_accounting(self):
        rec = SpanRecorder()
        rec.record_attempt(0, 0, 1, 0, committed=False,
                           phases={"execute": 100.0}, reason="lazy_rr")
        rec.record_attempt(0, 0, 2, 1, committed=True,
                           phases={"execute": 80.0, "publish": 10.0},
                           parent_txid=1, total_latency_ns=500.0)
        assert rec.attempts == 2
        assert rec.committed == 1
        assert rec.aborted == 1
        assert rec.retry_links == 1
        assert rec.retry_rate == 0.5
        assert rec.txn_latency.count == 1
        assert rec.abort_class_totals() == {"lr_conflict": 1}
        assert rec.phase_hists["execute"].count == 2

    def test_as_dict_round_trip_and_merge(self):
        first, _ = span_run(seed=5)
        second, _ = span_run(seed=11)
        clone = SpanRecorder.from_dict(first.as_dict())
        assert clone.as_dict() == first.as_dict()
        clone.merge(second)
        assert clone.attempts == first.attempts + second.attempts
        assert clone.aborted == first.aborted + second.aborted
        validate_spans(clone.as_dict())

    def test_merge_rejects_protocol_mismatch(self):
        left, right = SpanRecorder(), SpanRecorder()
        left.protocol, right.protocol = "hades", "baseline"
        with pytest.raises(ValueError, match="protocols"):
            left.merge(right)

    def test_keep_attempts_retains_retry_chain(self):
        rec = SpanRecorder(keep_attempts=True)
        rec.record_attempt(1, 2, 10, 0, committed=False, phases={},
                           reason="lazy_rr")
        rec.record_attempt(1, 2, 11, 1, committed=True, phases={},
                           parent_txid=10, total_latency_ns=1.0)
        assert [r["txid"] for r in rec.attempt_records] == [10, 11]
        assert rec.attempt_records[1]["parent_txid"] == 10

    def test_validate_rejects_attempt_mismatch(self):
        rec = SpanRecorder()
        dump = rec.as_dict()
        dump["attempts"] = 5
        with pytest.raises(ValueError, match="attempts"):
            validate_spans(dump)

    def test_validate_rejects_unknown_phase(self):
        dump = SpanRecorder().as_dict()
        dump["phases"]["teleport"] = LogHistogram().as_dict()
        with pytest.raises(ValueError, match="phase"):
            validate_spans(dump)

    def test_validate_rejects_unknown_abort_class(self):
        rec = SpanRecorder()
        rec.record_attempt(0, 0, 1, 0, committed=False, phases={},
                           reason="lazy_rr")
        dump = rec.as_dict()
        dump["abort_classes"] = {"gremlins:0": 1}
        with pytest.raises(ValueError, match="abort class"):
            validate_spans(dump)


class TestEndToEnd:
    @pytest.mark.parametrize("protocol", ["baseline", "hades", "hades-h"])
    def test_complete_taxonomy_and_invariants(self, protocol):
        rec, result = span_run(protocol)
        meter = result.metrics.meter
        assert rec.committed == meter.committed
        assert rec.aborted == meter.aborted
        assert rec.attempts == rec.committed + rec.aborted
        assert rec.unknown_aborts() == 0
        assert rec.txn_latency.count == rec.committed
        assert set(rec.phase_hists) <= set(SPAN_PHASES)
        assert rec.phase_hists["execute"].count > 0
        assert rec.message_hists  # fabric hook fired
        validate_spans(rec.as_dict())

    def test_retry_links_bounded_by_aborts(self):
        rec, _ = span_run()
        assert 0 < rec.retry_links <= rec.aborted

    def test_spans_do_not_change_results(self):
        rec = SpanRecorder()
        workload = lambda: MicroWorkload(0.5, record_count=64)  # noqa: E731
        plain = run_experiment("hades", workload(), duration_ns=150_000.0,
                               seed=3, llc_sets=256)
        spanned = run_experiment("hades", workload(), duration_ns=150_000.0,
                                 seed=3, llc_sets=256, spans=rec)
        assert plain.metrics.meter.committed == spanned.metrics.meter.committed
        assert plain.metrics.meter.aborted == spanned.metrics.meter.aborted
        assert plain.metrics.latency.mean() == spanned.metrics.latency.mean()
        assert plain.events_processed == spanned.events_processed

    def test_same_seed_same_spans(self):
        first, _ = span_run(seed=9)
        second, _ = span_run(seed=9)
        assert first.as_dict() == second.as_dict()

    def test_fault_drops_recorded(self):
        rec = SpanRecorder()
        plan = FaultPlan.parse("drop=0.05", seed=1)
        run_experiment("hades", MicroWorkload(0.3, record_count=128),
                       duration_ns=150_000.0, seed=4, llc_sets=256,
                       fault_plan=plan, spans=rec)
        assert rec.fault_drops
        validate_spans(rec.as_dict())

    def test_crash_windows_stay_classified(self):
        rec = SpanRecorder()
        plan = FaultPlan.parse("crash=1:30000:60000", seed=2)
        config = ClusterConfig(recovery=RecoveryParams(enabled=True))
        run_experiment("hades", MicroWorkload(0.5, record_count=64),
                       config=config, duration_ns=200_000.0, seed=6,
                       llc_sets=256, fault_plan=plan, spans=rec)
        assert rec.unknown_aborts() == 0
        validate_spans(rec.as_dict())

    def test_warmup_spans_discarded(self):
        rec = SpanRecorder()
        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                duration_ns=60_000.0, warmup_ns=60_000.0,
                                seed=5, llc_sets=512, spans=rec)
        # Post-warmup attempt counts track the post-warmup meter, not
        # the whole run.
        assert rec.committed == result.metrics.meter.committed

    def test_format_spans_renders_tables(self):
        rec, _ = span_run()
        text = format_spans(rec)
        assert "lifecycle spans:" in text
        assert "abort taxonomy:" in text
        assert "execute" in text
        assert "p999" in text


class TestLoadTaxonomy:
    """The open-loop load layer's phase and abort-class extensions."""

    def test_queue_wait_is_a_phase(self):
        from repro.obs.spans import SPAN_QUEUE_WAIT

        assert SPAN_QUEUE_WAIT in SPAN_PHASES

    def test_shed_and_overload_reasons_classify(self):
        assert classify_abort("queue_full_shed") == "shed"
        assert classify_abort("backpressure_shed") == "shed"
        assert classify_abort("degraded_shed") == "shed"
        assert classify_abort("queue_deadline") == "overload"
        assert classify_abort("retry_budget_exhausted") == "overload"
        assert {"shed", "overload"} <= set(ABORT_CLASSES)

    def test_every_retry_cause_records_backoff_phase(self):
        # Satellite contract: any aborted-then-retried attempt funnels
        # its backoff wait into the retry_backoff phase.
        rec, result = span_run(duration_ns=200_000.0)
        aborted = rec.aborted
        assert aborted > 0
        backoffs = rec.phase_hists["retry_backoff"].count
        assert backoffs > 0
        # Every backoff is either a post-abort retry or a pessimistic
        # directory-lock retry (hades); nothing else draws one.
        lock_retries = result.metrics.counters.get(
            "pessimistic_lock_retries")
        assert backoffs <= aborted + lock_retries
