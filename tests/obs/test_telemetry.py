"""Tests for the live telemetry bus (:mod:`repro.obs.telemetry`).

The two contracts that matter (docs/SERVE.md, docs/PERFORMANCE.md):

* **Zero observer effect** — enabling telemetry never changes the
  simulation.  Results with the sampler on are *bit-identical* to
  results with it off, including the engine event counter.
* **Deterministic snapshots** — a same-seed rerun produces a
  byte-identical ``TELEMETRY.jsonl``, for any ``--workers`` count.
"""

import dataclasses
import json

import pytest

from repro.config import TelemetryParams
from repro.obs.telemetry import (
    SNAPSHOT_FIELDS,
    TELEMETRY_SCHEMA,
    TelemetrySampler,
    TelemetryWriter,
    load_telemetry_jsonl,
    validate_snapshot,
)
from repro.runner import run_experiment
from repro.workloads import make_workload


def _run(telemetry=None, **kwargs):
    return run_experiment("hades", make_workload("HT-wA", scale=0.05),
                          duration_ns=60_000.0, seed=11, llc_sets=512,
                          telemetry=telemetry, **kwargs)


def _result_fingerprint(result):
    """Every deterministic field of an ExperimentResult, serialized."""
    return json.dumps({
        "summary": result.metrics.summary(),
        "events": result.events_processed,
        "bloom_read_ops": result.bloom_read_ops,
        "bloom_write_ops": result.bloom_write_ops,
        "counters": result.metrics.counters.as_dict(),
    }, sort_keys=True)


class TestObserverEffect:
    def test_on_vs_off_bit_identical(self):
        off = _run()
        on = _run(telemetry=TelemetrySampler(interval_ns=5_000.0))
        assert _result_fingerprint(on) == _result_fingerprint(off)

    def test_event_counter_unchanged_by_sampling(self):
        # The sampler un-counts its own dispatches; the per-event live
        # counter must agree with the no-telemetry run exactly.
        off = _run()
        on = _run(telemetry=TelemetrySampler(interval_ns=1_000.0))
        assert on.events_processed == off.events_processed

    def test_sampler_takes_snapshots(self):
        sampler = TelemetrySampler(interval_ns=5_000.0)
        result = _run(telemetry=sampler)
        assert result.telemetry is sampler
        assert sampler.taken >= 10
        for snap in sampler.snapshots:
            validate_snapshot(snap)


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            with TelemetryWriter(str(path)) as writer:
                _run(telemetry=TelemetrySampler(interval_ns=5_000.0,
                                                sink=writer))
            paths.append(path)
        first, second = paths
        assert first.read_bytes() == second.read_bytes()
        assert first.stat().st_size > 0

    def test_snapshots_strictly_ordered(self):
        sampler = TelemetrySampler(interval_ns=5_000.0)
        _run(telemetry=sampler)
        seqs = [snap["seq"] for snap in sampler.snapshots]
        times = [snap["t_ns"] for snap in sampler.snapshots]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert times == sorted(times)

    def test_sweep_cell_jsonl_identical_across_worker_counts(self,
                                                             tmp_path):
        from repro.sweep import SweepSpec, run_sweep
        from repro.obs.artifacts import tagged_path

        spec = SweepSpec(scenarios=("HT-wA",),
                         protocols=("baseline", "hades"), seeds=(7,),
                         scale=0.02, duration_ns=15_000.0)
        blobs = {}
        for workers in (1, 2):
            out = tmp_path / f"w{workers}" / "TELEMETRY.jsonl"
            out.parent.mkdir()
            run_sweep(spec, workers=workers, telemetry_out=str(out),
                      log=lambda _msg: None)
            blobs[workers] = b"".join(
                (out.parent / tagged_path(out.name, cell.cell_id))
                .read_bytes()
                for cell in spec.expand())
        assert blobs[1] == blobs[2]
        assert blobs[1]

    def test_sweep_artifact_unchanged_by_telemetry(self, tmp_path):
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec(scenarios=("HT-wA",), protocols=("hades",),
                         seeds=(7,), scale=0.02, duration_ns=15_000.0)
        plain = tmp_path / "plain.json"
        wired = tmp_path / "wired.json"
        run_sweep(spec, workers=1, out=str(plain), log=lambda _m: None)
        run_sweep(spec, workers=1, out=str(wired),
                  telemetry_out=str(tmp_path / "t.jsonl"),
                  log=lambda _m: None)
        assert plain.read_bytes() == wired.read_bytes()


class TestSchema:
    def _snap(self):
        sampler = TelemetrySampler(interval_ns=10_000.0)
        _run(telemetry=sampler)
        return dict(sampler.snapshots[-1])

    def test_schema_is_closed_both_ways(self):
        snap = self._snap()
        validate_snapshot(snap)
        extra = dict(snap, surprise=1)
        with pytest.raises(ValueError, match="unknown"):
            validate_snapshot(extra)
        missing = dict(snap)
        del missing["committed_delta"]
        with pytest.raises(ValueError, match="missing"):
            validate_snapshot(missing)

    def test_schema_version_pinned(self):
        snap = self._snap()
        assert snap["schema"] == TELEMETRY_SCHEMA
        bad = dict(snap, schema=TELEMETRY_SCHEMA + 1)
        with pytest.raises(ValueError, match="schema"):
            validate_snapshot(bad)

    def test_every_declared_field_present(self):
        snap = self._snap()
        assert sorted(snap) == sorted(SNAPSHOT_FIELDS)

    def test_writer_roundtrip(self, tmp_path):
        path = tmp_path / "TELEMETRY.jsonl"
        with TelemetryWriter(str(path)) as writer:
            _run(telemetry=TelemetrySampler(interval_ns=10_000.0,
                                            sink=writer))
            assert writer.lines > 0
        loaded = load_telemetry_jsonl(str(path))
        assert len(loaded) == writer.lines
        for snap in loaded:
            validate_snapshot(snap)


class TestTelemetryParams:
    def test_defaults_disabled(self):
        params = TelemetryParams()
        assert not params.enabled

    def test_parse_empty_enables_defaults(self):
        params = TelemetryParams.parse("")
        assert params.enabled
        assert params.interval_ns == 10_000.0

    def test_parse_spec(self):
        params = TelemetryParams.parse("interval=2500,retain=64")
        assert params.enabled
        assert params.interval_ns == 2_500.0
        assert params.retain == 64

    def test_parse_off(self):
        assert not TelemetryParams.parse("off").enabled
        assert not TelemetryParams.parse("none").enabled

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TelemetryParams(enabled=True, interval_ns=0.0)
        with pytest.raises(ValueError):
            TelemetryParams(enabled=True, retain=0)
        with pytest.raises(ValueError):
            TelemetryParams.parse("cadence=5")

    def test_config_override_path(self):
        # Sweep overrides reach the sampler via config.telemetry.
        from repro.config import ClusterConfig

        config = ClusterConfig()
        tuned = dataclasses.replace(
            config, telemetry=dataclasses.replace(
                config.telemetry, enabled=True, interval_ns=2_000.0))
        result = run_experiment(
            "hades", make_workload("HT-wA", scale=0.05), config=tuned,
            duration_ns=30_000.0, seed=3, llc_sets=512)
        assert result.telemetry is not None
        assert result.telemetry.interval_ns == 2_000.0
        assert result.telemetry.taken > 0
