"""EventTracer: schema, output formats, and end-to-end instrumentation."""

import json

import pytest

from repro.obs.tracer import (
    ENGINE_PID,
    NET_TID_BASE,
    EventTracer,
    load_jsonl,
    validate_jsonl,
)
from repro.runner import run_experiment
from repro.workloads import make_workload


def traced_run(protocol="hades", duration_ns=60_000.0, seed=7):
    tracer = EventTracer()
    result = run_experiment(protocol, make_workload("HT-wA", scale=0.05),
                            duration_ns=duration_ns, seed=seed, llc_sets=512,
                            tracer=tracer)
    return tracer, result


class TestEventCollection:
    def test_untraced_run_attaches_nothing(self):
        result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                                duration_ns=30_000.0, seed=7, llc_sets=512)
        assert result.samples is None
        assert result.message_stats is None

    def test_traced_run_collects_all_categories(self):
        tracer, result = traced_run()
        categories = {event["cat"] for event in tracer.events}
        assert {"engine", "net", "txn"} <= categories
        assert result.metrics.meter.committed > 0

    def test_txn_lifecycle_events_present(self):
        tracer, result = traced_run()
        names = [event["name"] for event in tracer.events]
        assert "txn_begin" in names
        assert "txn_commit" in names
        assert "execution" in names  # phase span
        assert tracer.committed_count() == result.metrics.meter.committed

    def test_message_events_carry_queue_and_wire_split(self):
        tracer, _ = traced_run()
        messages = [e for e in tracer.events if e["cat"] == "net"]
        assert messages
        for event in messages:
            assert event["ph"] == "X"
            assert event["tid"] == NET_TID_BASE + event["args"]["dst"]
            assert event["args"]["queue_ns"] >= 0.0
            assert event["args"]["wire_ns"] > 0.0
            # Queueing + wire never exceeds the delivered latency.
            assert (event["args"]["queue_ns"] + event["args"]["wire_ns"]
                    <= event["dur"] + 1e-9)

    def test_squash_events_carry_reason(self):
        tracer, result = traced_run(duration_ns=120_000.0)
        squashes = [e for e in tracer.events if e["name"] == "txn_squash"]
        assert len(squashes) == result.metrics.meter.aborted
        assert all(e["args"]["reason"] for e in squashes)

    def test_phase_totals_match_phase_breakdown_exactly(self):
        tracer, result = traced_run()
        assert tracer.committed_phase_totals() == pytest.approx(
            result.metrics.phases.as_dict())

    def test_capture_schedules_off_by_default(self):
        tracer, _ = traced_run()
        assert not any(e["name"] == "schedule" for e in tracer.events)


class TestJsonlOutput:
    def test_round_trip_and_validation(self, tmp_path):
        tracer, _ = traced_run()
        path = str(tmp_path / "trace.jsonl")
        tracer.save_jsonl(path)
        assert validate_jsonl(path) == len(tracer)
        events = load_jsonl(path)
        assert len(events) == len(tracer)
        assert events[0] == json.loads(json.dumps(tracer.events[0]))

    def test_save_dispatches_on_extension(self, tmp_path):
        tracer, _ = traced_run(duration_ns=20_000.0)
        jsonl_path = str(tmp_path / "t.jsonl")
        chrome_path = str(tmp_path / "t.json")
        tracer.save(jsonl_path)
        tracer.save(chrome_path)
        assert validate_jsonl(jsonl_path) == len(tracer)
        assert "traceEvents" in json.load(open(chrome_path))

    def test_validate_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0}\n')
        with pytest.raises(ValueError, match="header"):
            validate_jsonl(str(path))

    def test_validate_rejects_wrong_format_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "format": 99}\n')
        with pytest.raises(ValueError, match="format"):
            validate_jsonl(str(path))

    def test_validate_rejects_bad_event(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = '{"kind": "header", "format": 1}'
        event = ('{"ts": 1.0, "ph": "Z", "cat": "txn", "name": "x", '
                 '"pid": 0, "tid": 0, "args": {}}')
        path.write_text(header + "\n" + event + "\n")
        with pytest.raises(ValueError, match="bad ph"):
            validate_jsonl(str(path))

    def test_validate_rejects_x_event_without_dur(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = '{"kind": "header", "format": 1}'
        event = ('{"ts": 1.0, "ph": "X", "cat": "net", "name": "m", '
                 '"pid": 0, "tid": 0, "args": {}}')
        path.write_text(header + "\n" + event + "\n")
        with pytest.raises(ValueError, match="dur"):
            validate_jsonl(str(path))

    def test_validate_rejects_event_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "format": 1, "events": 5}\n')
        with pytest.raises(ValueError, match="declares"):
            validate_jsonl(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            validate_jsonl(str(path))


class TestChromeOutput:
    def test_timestamps_converted_to_microseconds(self):
        tracer = EventTracer()
        tracer.instant(2000.0, "txn", "txn_begin", pid=1, tid=2)
        tracer.complete(1000.0, 500.0, "net", "Msg", pid=0, tid=NET_TID_BASE)
        doc = tracer.chrome_trace()
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        instant = next(e for e in events if e["ph"] == "i")
        span = next(e for e in events if e["ph"] == "X")
        assert instant["ts"] == 2.0
        assert instant["s"] == "t"
        assert span["ts"] == 1.0
        assert span["dur"] == 0.5

    def test_metadata_names_processes_and_threads(self):
        tracer, _ = traced_run(duration_ns=20_000.0)
        doc = tracer.chrome_trace()
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in metadata
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in metadata
                        if e["name"] == "thread_name"}
        assert "engine" in process_names
        assert any(name.startswith("node ") for name in process_names)
        assert any(name.startswith("slot ") for name in thread_names)
        assert any(name.startswith("net to node ") for name in thread_names)

    def test_engine_events_use_synthetic_pid(self):
        tracer, _ = traced_run(duration_ns=20_000.0)
        engine_events = [e for e in tracer.events if e["cat"] == "engine"]
        assert engine_events
        assert all(e["pid"] == ENGINE_PID for e in engine_events)

    def test_chrome_json_is_serializable(self, tmp_path):
        tracer, _ = traced_run(duration_ns=20_000.0)
        path = str(tmp_path / "trace.json")
        tracer.save_chrome(path)
        doc = json.load(open(path))
        assert len(doc["traceEvents"]) > len(tracer)  # events + metadata


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first, _ = traced_run(seed=11)
        second, _ = traced_run(seed=11)
        assert first.events == second.events


class TestStreamingFinalize:
    """A run that dies mid-experiment must leave a usable trace."""

    def test_streamed_trace_matches_in_memory_events(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        with EventTracer(stream_path=path) as tracer:
            run_experiment("hades", make_workload("HT-wA", scale=0.05),
                           duration_ns=30_000.0, seed=7, llc_sets=512,
                           tracer=tracer)
        assert validate_jsonl(path) == len(tracer)
        assert load_jsonl(path) == json.loads(json.dumps(tracer.events))

    def test_close_is_idempotent_and_stops_streaming(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        tracer = EventTracer(stream_path=path)
        tracer.instant(1.0, "txn", "txn_begin", pid=0, tid=0)
        tracer.close()
        tracer.close()
        tracer.instant(2.0, "txn", "txn_begin", pid=0, tid=0)  # not written
        assert validate_jsonl(path) == 1

    def test_chrome_path_written_on_close_after_exception(self, tmp_path):
        chrome = str(tmp_path / "trace.json")
        with pytest.raises(RuntimeError):
            with EventTracer(chrome_path=chrome) as tracer:
                tracer.instant(1.0, "txn", "txn_begin", pid=0, tid=0)
                raise RuntimeError("run died")
        doc = json.load(open(chrome))
        assert any(e.get("name") == "txn_begin" for e in doc["traceEvents"])

    def test_killed_run_leaves_replayable_trace(self, tmp_path):
        """Regression: SIGKILL a streaming run mid-experiment, then
        replay what reached the disk — every line must be valid and the
        events must be a prefix of an identical surviving run."""
        import os
        import signal
        import subprocess
        import sys

        path = str(tmp_path / "killed.jsonl")
        script = f"""
import os, sys
from repro.obs.tracer import EventTracer
from repro.runner import run_experiment
from repro.workloads import make_workload

tracer = EventTracer(stream_path={path!r})
# kill ourselves from inside the run: after 400 events, no cleanup.
real = tracer.instant
count = [0]
def instant(*args, **kwargs):
    real(*args, **kwargs)
    count[0] += 1
    if count[0] >= 400:
        os.kill(os.getpid(), 9)
tracer.instant = instant
run_experiment("hades", make_workload("HT-wA", scale=0.05),
               duration_ns=60_000.0, seed=7, llc_sets=512, tracer=tracer)
"""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True)
        assert proc.returncode == -signal.SIGKILL
        count = validate_jsonl(path)
        assert count >= 399  # all fully-written lines survived the kill
        # Replay: the dead run's events are a prefix of a healthy run's.
        survivor, _ = traced_run(duration_ns=60_000.0, seed=7)
        replayed = load_jsonl(path)
        expected = json.loads(json.dumps(survivor.events[:len(replayed)]))
        assert replayed == expected
