"""NodeView: per-node membership belief and epoch fencing."""

from repro.recovery.epoch import NodeView


def test_fresh_view_accepts_everyone():
    view = NodeView(node_id=0)
    assert view.epoch == 0
    assert view.accepts(1, 0)
    assert view.accepts(2, 5)
    assert not view.considers_dead(1)


def test_dead_sender_is_rejected_regardless_of_epoch():
    view = NodeView(node_id=0)
    view.adopt(1, {2})
    assert view.considers_dead(2)
    assert not view.accepts(2, 0)
    assert not view.accepts(2, 99)
    # Other senders are unaffected.
    assert view.accepts(1, 0)


def test_adopt_returns_only_newly_dead():
    view = NodeView(node_id=0)
    assert view.adopt(1, {2}) == {2}
    # Re-announcing the same death is not news.
    assert view.adopt(2, {2, 1}) == {1}
    assert view.epoch == 2
    assert view.dead == {1, 2}


def test_adopt_replaces_dead_set_on_rejoin():
    view = NodeView(node_id=0)
    view.adopt(1, {2})
    # The rejoin announcement carries the dead set *without* the
    # readmitted node: adoption replaces, never accumulates.
    view.adopt(2, set())
    assert not view.considers_dead(2)
    assert view.accepts(2, 2)


def test_min_epoch_fences_pre_crash_zombies():
    view = NodeView(node_id=0)
    view.adopt(2, set())
    view.min_epoch[2] = 2
    # Anything node 2 stamped before its readmission epoch is a zombie.
    assert not view.accepts(2, 0)
    assert not view.accepts(2, 1)
    assert view.accepts(2, 2)
    # Newer epochs always pass: the sender may be ahead of us.
    assert view.accepts(2, 7)
