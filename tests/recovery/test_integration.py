"""End-to-end crash recovery: detect, reconfigure, scrub, readmit.

Covers the runner wiring (``config.recovery.enabled`` + a crash window)
for every protocol plus the smoke harness's failover guarantees; the
full four-protocol determinism sweep lives in
``python -m repro.recovery.smoke`` (CI's recovery smoke step).
"""

import pytest

from repro.config import ClusterConfig, FaultPlan, RecoveryParams
from repro.obs.tracer import EventTracer
from repro.recovery.smoke import REPLICATED, run_recovery_smoke
from repro.runner import run_experiment
from repro.workloads import make_workload

SPEC = "crash=1:20000:70000"


def recovery_run(protocol, fault_seed=13, tracer=None, enabled=True):
    config = ClusterConfig(nodes=3, cores_per_node=2,
                           recovery=RecoveryParams(enabled=enabled))
    return run_experiment(protocol, make_workload("HT-wA", scale=0.05),
                          config=config, duration_ns=150_000.0, seed=7,
                          llc_sets=512, tracer=tracer,
                          fault_plan=FaultPlan.parse(SPEC, seed=fault_seed))


@pytest.mark.parametrize("protocol", ["baseline", "hades", "hades-h"])
def test_crashed_run_detects_and_recovers(protocol):
    result = recovery_run(protocol)
    summary = result.recovery_summary
    assert summary is not None
    # Leases expired, the death and the rejoin each bumped the epoch,
    # and the node was readmitted inside the run.
    assert summary["suspicions_raised"] >= 1
    assert summary["epochs_bumped"] >= 2
    assert summary["time_to_recover_ns"] > 0
    assert result.metrics.meter.committed > 0


def test_recovery_disabled_leaves_no_summary():
    result = recovery_run("hades", enabled=False)
    assert result.recovery_summary is None
    # The crash is still injected — only the recovery plane is off.
    assert result.fault_summary is not None


def test_crash_free_plan_installs_no_manager():
    config = ClusterConfig(nodes=3, cores_per_node=2,
                           recovery=RecoveryParams(enabled=True))
    result = run_experiment("hades", make_workload("HT-wA", scale=0.05),
                            config=config, duration_ns=30_000.0, seed=7,
                            llc_sets=512,
                            fault_plan=FaultPlan.parse("jitter=100", seed=3))
    assert result.recovery_summary is None


def test_same_seed_reproduces_the_recovery_stream():
    tracer_a, tracer_b = EventTracer(), EventTracer()
    first = recovery_run("hades", tracer=tracer_a)
    second = recovery_run("hades", tracer=tracer_b)
    assert (first.metrics.meter.committed
            == second.metrics.meter.committed)
    assert tracer_a.recovery_events() == tracer_b.recovery_events()
    assert tracer_a.recovery_events()  # the plane actually did something


def test_smoke_run_is_clean_for_hades():
    result = run_recovery_smoke("hades")
    assert result.serializable and not result.anomalies
    assert result.lock_leaks == []
    assert result.recovery_summary["epochs_bumped"] >= 2
    assert result.recovery_summary["time_to_recover_ns"] > 0


def test_smoke_replicated_fails_over_and_converges():
    result = run_recovery_smoke(REPLICATED)
    assert result.serializable and not result.anomalies
    assert result.lock_leaks == []
    # Accesses homed on the dead node were actually served by replicas.
    assert result.recovery_summary["failover_routes"] > 0
    checked, mismatched = result.replicas
    assert checked > 0 and mismatched == 0
