"""Crash-outcome resolution and rejoin replay (RecoveryManager units).

The resolution rule (docs/RECOVERY.md): a dead coordinator's in-flight
transaction commits iff the durable replica logs prove it passed its
commit point — some store already promoted it, or every manifest line
has a temporary copy on every placement replica.  Everything else
aborts.
"""

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, FaultPlan, RecoveryParams
from repro.core.replication import HadesReplicatedProtocol
from repro.recovery.manager import RecoveryManager
from repro.sim.engine import Engine


def build(replicas=1):
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(nodes=3, cores_per_node=2),
                      llc_sets=256)
    protocol = HadesReplicatedProtocol(cluster, seed=1, replicas=replicas)
    for record_id in (1, 2, 3):
        cluster.allocate_record(record_id, 64)
    manager = RecoveryManager(
        protocol, FaultPlan.parse("crash=1:10000:20000", seed=1),
        RecoveryParams(enabled=True))
    return cluster, protocol, manager


def test_complete_manifest_resolves_to_commit():
    cluster, protocol, manager = build()
    record = cluster.record(1)
    line = record.lines[0]
    replica = protocol.replica_nodes_of_line(line)[0]
    owner = (2, 77)
    assert protocol.stores[replica].persist_temporary(
        owner, {line: "resolved"}, manifest=[line])

    manager._resolve_inflight(2)

    # Published to home memory and promoted at the replica.
    assert cluster.node(record.home_node).memory.read_line(line) == "resolved"
    assert owner in protocol.stores[replica].promoted_owners
    assert manager.counters["resolved_commit"] == 1
    # The crashed coordinator's parked client consumes the verdict once.
    assert manager.consume_resolved_commit(owner)
    assert not manager.consume_resolved_commit(owner)


def test_incomplete_manifest_resolves_to_abort():
    cluster, protocol, manager = build()
    record = cluster.record(1)
    line_a, line_b = cluster.record(1).lines[0], cluster.record(2).lines[0]
    replica = protocol.replica_nodes_of_line(line_a)[0]
    owner = (2, 78)
    # The manifest names two lines but only one copy was persisted
    # before the crash: the Ack set cannot have been complete.
    assert protocol.stores[replica].persist_temporary(
        owner, {line_a: "lost"}, manifest=[line_a, line_b])

    manager._resolve_inflight(2)

    assert manager.counters["resolved_abort"] == 1
    assert manager.counters["resolved_commit"] == 0
    assert cluster.node(record.home_node).memory.read_line(line_a) != "lost"
    for store in protocol.stores.values():
        assert owner not in store.temporary
        assert owner not in store.manifests
    assert not manager.consume_resolved_commit(owner)


def test_promoted_anywhere_resolves_to_commit():
    cluster, protocol, manager = build(replicas=2)
    record = cluster.record(1)
    line = record.lines[0]
    first, second = protocol.replica_nodes_of_line(line)
    owner = (2, 79)
    for replica in (first, second):
        assert protocol.stores[replica].persist_temporary(
            owner, {line: "halfway"}, manifest=[line])
    # The coordinator crashed mid-promotion: one replica already moved
    # the copy to permanent storage, the other still holds the log.
    protocol.stores[first].promote(owner)

    manager._resolve_inflight(2)

    assert manager.counters["resolved_commit"] == 1
    assert cluster.node(record.home_node).memory.read_line(line) == "halfway"
    assert owner in protocol.stores[second].promoted_owners
    assert owner not in protocol.stores[second].temporary


def test_unrelated_coordinators_are_left_alone():
    cluster, protocol, manager = build()
    line = cluster.record(1).lines[0]
    replica = protocol.replica_nodes_of_line(line)[0]
    survivor_owner = (0, 11)
    assert protocol.stores[replica].persist_temporary(
        survivor_owner, {line: "inflight"}, manifest=[line])

    manager._resolve_inflight(2)

    # Node 0 is alive; its in-flight log entry must not be resolved.
    assert survivor_owner in protocol.stores[replica].temporary
    assert manager.counters["resolved_commit"] == 0
    assert manager.counters["resolved_abort"] == 0


def test_replay_applies_only_the_unseen_suffix():
    cluster, protocol, manager = build()
    record = cluster.record(1)
    node_id, line = record.home_node, record.lines[0]
    memory = cluster.node(node_id).memory
    memory.write_lines({line: "b"})
    entries = [(line, "a"), (line, "b"), (line, "c")]

    manager._replay_entries(node_id, entries, source=1)

    # Memory already held "b": only the suffix after the last match lands.
    assert memory.read_line(line) == "c"
    assert manager.counters["reconciled_lines"] == 1

    # Double delivery (central drain + gap push) is idempotent.
    manager._replay_entries(node_id, entries, source=1)
    assert memory.read_line(line) == "c"
    assert manager.counters["reconciled_lines"] == 1
