"""Post-crash scrubbing: the dying node's wipe and survivors' cleanup."""

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.core.replication import ReplicaStore
from repro.hardware.bloom import BloomFilter
from repro.recovery.scrub import (dead_owner_temporaries, scrub_dead_residue,
                                  wipe_volatile_state)
from repro.sim.engine import Engine


def build_cluster():
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(nodes=3, cores_per_node=2),
                      llc_sets=256)
    for record_id in (1, 2, 3):
        cluster.allocate_record(record_id, 64)
    return cluster


def _bf(lines):
    bf = BloomFilter(64)
    bf.insert_all(lines)
    return bf


def test_wipe_drops_every_volatile_structure():
    cluster = build_cluster()
    record = cluster.record(1)
    node = cluster.node(record.home_node)
    line = record.lines[0]
    owner = (node.node_id, 7)

    node.register_local_tx(7)
    node.directory.tag_write(line, 7)
    assert node.directory.try_lock(owner, _bf([]), _bf([line]), [line])
    node.nic.record_remote_read(((node.node_id + 1) % 3, 9), [line])
    meta = node.memory.metadata(record.address)
    assert meta.try_lock(owner)

    wiped = wipe_volatile_state(node)

    assert wiped >= 5
    assert node.directory.lock_owners() == []
    assert node.directory.writer_tags() == {}
    assert node.nic.remote_owners() == []
    assert node.local_tx_ids() == []
    assert meta.lock_owner is None


def test_wipe_preserves_memory_contents():
    cluster = build_cluster()
    record = cluster.record(1)
    node = cluster.node(record.home_node)
    line = record.lines[0]
    node.memory.write_lines({line: "durable"})
    wipe_volatile_state(node)
    # Memory models the durable region: a crash must not touch it.
    assert node.memory.read_line(line) == "durable"


def test_scrub_releases_only_the_dead_nodes_residue():
    cluster = build_cluster()
    record = cluster.record(1)
    survivor = cluster.node(record.home_node)
    line = record.lines[0]
    dead = (record.home_node + 1) % 3
    dead_owner = (dead, 5)
    live_owner = ((dead + 1) % 3, 3)

    assert survivor.directory.try_lock(dead_owner, _bf([]), _bf([line]),
                                       [line])
    survivor.nic.record_remote_write(dead_owner, [line])
    survivor.nic.record_remote_read(live_owner, [line])
    meta = survivor.memory.metadata(record.address)
    assert meta.try_lock(dead_owner)

    released, owners = scrub_dead_residue(survivor, dead)

    assert released == 3
    assert owners == {dead_owner}
    assert survivor.directory.lock_owners() == []
    assert meta.lock_owner is None
    # The live transaction's NIC state survives the scrub.
    assert survivor.nic.remote_owners() == [live_owner]


def test_dead_owner_temporaries_filters_by_coordinator():
    store = ReplicaStore()
    store.persist_temporary((1, 2), {100: "a"})
    store.persist_temporary((1, 9), {101: "b"})
    store.persist_temporary((0, 4), {102: "c"})
    assert dead_owner_temporaries(store, 1) == [(1, 2), (1, 9)]
    assert dead_owner_temporaries(store, 2) == []
