"""End-to-end tests for the ``repro serve`` HTTP surface.

One module-scoped server instance (real subprocess workers are slow to
spawn; the lifecycle checks share it) plus per-test servers where the
test kills or shuts the server down.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.client import (
    http_get_json,
    http_post_json,
    render_runs_table,
    render_snapshot,
    stream_ndjson,
    watch,
)
from repro.serve.server import ReproServer

#: Fast micro run: ~1 second of wall clock, dozens of snapshots.
SPEC = {"scenario": "quick-ht", "seed": 7, "duration_us": 120.0,
        "telemetry_interval_ns": 5_000.0}


@pytest.fixture(scope="module")
def server():
    server = ReproServer(port=0, max_workers=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=10.0)


def _wait_done(server, run_id, timeout=60.0):
    run = server.registry.get(run_id)
    with run.cond:
        assert run.cond.wait_for(lambda: run.finished, timeout=timeout)
    return run


class TestEndpoints:
    def test_healthz(self, server):
        doc = http_get_json(server.url + "/healthz")
        assert doc["status"] == "ok"
        assert set(doc["runs"]) == {"queued", "running", "done",
                                    "failed"}

    def test_post_run_and_full_lifecycle(self, server):
        accepted = http_post_json(server.url + "/runs", SPEC)
        assert accepted["state"] == "queued"
        run = _wait_done(server, accepted["id"])
        assert run.state == "done"
        detail = http_get_json(f"{server.url}/runs/{accepted['id']}")
        assert detail["state"] == "done"
        assert detail["result"]["committed"] > 0
        assert detail["snapshots"] > 0
        assert detail["latest"]["seq"] == detail["snapshots"] - 1
        listing = http_get_json(server.url + "/runs")["runs"]
        assert any(row["id"] == accepted["id"] and row["state"] == "done"
                   for row in listing)

    def test_bad_spec_rejected_no_run_created(self, server):
        before = len(http_get_json(server.url + "/runs")["runs"])
        with pytest.raises(urllib.error.HTTPError) as err:
            http_post_json(server.url + "/runs",
                           {"scenario": "quick-ht", "oops": 1})
        assert err.value.code == 400
        assert "unknown spec fields" in json.loads(
            err.value.read().decode())["error"]
        after = len(http_get_json(server.url + "/runs")["runs"])
        assert after == before

    def test_bad_json_body_rejected(self, server):
        req = urllib.request.Request(
            server.url + "/runs", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5.0)
        assert err.value.code == 400

    def test_unknown_routes_404(self, server):
        for path in ("/nope", "/runs/r999", "/runs/r999/stream"):
            with pytest.raises(urllib.error.HTTPError) as err:
                http_get_json(server.url + path)
            assert err.value.code == 404

    def test_failing_worker_marks_run_failed(self, server):
        # Valid spec shape, but the scenario resolves at POST time —
        # use an override that only explodes inside the child instead.
        accepted = http_post_json(
            server.url + "/runs",
            dict(SPEC, duration_us=1.0, slo="p99<0.000001us"))
        run = _wait_done(server, accepted["id"])
        # SLO failure is still a *completed* run; a worker crash is the
        # failed path, covered by test_worker_death below.
        assert run.finished

    def test_metrics_exposition(self, server):
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=5.0) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "# TYPE repro_runs gauge" in text
        assert 'repro_runs{state="done"}' in text


class TestStreaming:
    def test_stream_replays_then_ends(self, server):
        accepted = http_post_json(server.url + "/runs", SPEC)
        run_id = accepted["id"]
        messages = list(stream_ndjson(
            f"{server.url}/runs/{run_id}/stream", timeout=60.0))
        kinds = [message["type"] for message in messages]
        assert kinds.count("end") == 1 and kinds[-1] == "end"
        snaps = [m["data"] for m in messages if m["type"] == "snapshot"]
        assert len(snaps) >= 3
        seqs = [snap["seq"] for snap in snaps]
        assert seqs == sorted(seqs)
        end = messages[-1]
        assert end["state"] == "done"
        assert end["snapshots"] == len(snaps) + snaps[0]["seq"]

    def test_stream_after_completion_replays_retained(self, server):
        accepted = http_post_json(server.url + "/runs", SPEC)
        run = _wait_done(server, accepted["id"])
        messages = list(stream_ndjson(
            f"{server.url}/runs/{accepted['id']}/stream", timeout=10.0))
        snaps = [m for m in messages if m["type"] == "snapshot"]
        assert len(snaps) == len(run.snapshots)
        assert messages[-1]["type"] == "end"


class TestWorkerFailure:
    def test_worker_death_fails_run(self):
        server = ReproServer(port=0, max_workers=1)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            run = server.submit(dict(SPEC))
            # Kill the child as soon as it exists; EOF without a
            # terminal message must fail the run, not hang it.
            deadline = threading.Event()
            for _ in range(200):
                with server._cond:
                    proc = server._procs.get(run.run_id)
                if proc is not None:
                    proc.terminate()
                    break
                deadline.wait(0.05)
            with run.cond:
                assert run.cond.wait_for(lambda: run.finished,
                                         timeout=30.0)
            assert run.state == "failed"
            assert "worker died" in (run.error or "")
            # The manager thread releases its slot after joining the
            # dead child, slightly after run.finished flips.
            with server._cond:
                assert server._cond.wait_for(
                    lambda: server._active == 0, timeout=10.0)
        finally:
            server.shutdown()
            thread.join(timeout=10.0)


class TestShutdown:
    def test_post_shutdown_stops_server_and_workers(self):
        server = ReproServer(port=0, max_workers=1)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        http_post_json(server.url + "/shutdown", {})
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert server.active_workers() == 0
        with pytest.raises((urllib.error.URLError, ConnectionError,
                            OSError)):
            http_get_json(server.url + "/healthz", timeout=2.0)

    def test_submit_after_shutdown_fails_fast(self):
        server = ReproServer(port=0, max_workers=1)
        server.shutdown()
        run = server.submit(dict(SPEC))
        assert run.state == "failed"
        assert "shutting down" in run.error


class TestWatch:
    def test_watch_once_run_view(self, server, capsys):
        accepted = http_post_json(server.url + "/runs", SPEC)
        _wait_done(server, accepted["id"])
        code = watch(f"{server.url}/runs/{accepted['id']}", once=True)
        out = capsys.readouterr().out
        assert code == 0
        assert "committed" in out and "[done]" in out

    def test_watch_once_server_view(self, server, capsys):
        code = watch(server.url, once=True)
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario" in out and "quick-ht" in out

    def test_watch_unreachable_is_an_error_message(self, capsys):
        code = watch("http://127.0.0.1:1/runs", once=True)
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_renderers_handle_empty_and_minimal_input(self):
        assert "no runs" in render_runs_table([])
        snap = {"run": "x", "seq": 0, "t_ns": 1000.0, "committed": 1,
                "committed_delta": 1, "aborted": 0, "aborted_delta": 0,
                "throughput_tps": 1e6, "abort_rate": 0.0,
                "inflight_txns": 2, "events_per_sec": 1e8,
                "queue_depth": {}, "queue_shed": {},
                "degraded_nodes": [], "recovery_epoch": 0}
        text = render_snapshot(snap)
        assert "committed" in text and "1,000,000 tps" in text
