"""Unit tests for the serve layer's pure pieces: run lifecycle state,
spec validation, and Prometheus rendering — no HTTP, no subprocesses."""

import pytest

from repro.serve.state import (
    RUN_STATES,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    RunRegistry,
)
from repro.serve.prom import render_prometheus
from repro.serve.worker import cell_from_spec, validate_spec


def _snap(seq, committed=10, t_ns=10_000.0):
    """A minimal snapshot carrying the fields state/prom read."""
    return {"seq": seq, "t_ns": t_ns, "committed": committed,
            "aborted": 2, "inflight_txns": 4, "events_per_sec": 1e6,
            "recovery_epoch": 0, "queue_depth": {"0": 3},
            "queue_shed": {"capacity:0": 1}}


class TestRunLifecycle:
    def test_states_progress(self):
        registry = RunRegistry()
        run = registry.create({"scenario": "quick-ht"})
        assert run.state == STATE_QUEUED and not run.finished
        run.set_running()
        assert run.state == STATE_RUNNING
        run.finish({"committed": 1})
        assert run.state == STATE_DONE and run.finished
        assert run.error is None

    def test_error_payload_means_failed(self):
        run = RunRegistry().create({"scenario": "quick-ht"})
        run.finish({"error": "boom"})
        assert run.state == STATE_FAILED
        assert run.error == "boom"

    def test_fail_directly(self):
        run = RunRegistry().create({"scenario": "quick-ht"})
        run.fail("worker died")
        assert run.state == STATE_FAILED and run.finished

    def test_ids_are_sequential(self):
        registry = RunRegistry()
        ids = [registry.create({"scenario": "s"}).run_id
               for _ in range(3)]
        assert ids == ["r1", "r2", "r3"]
        assert registry.get("r2").run_id == "r2"
        assert registry.get("r9") is None
        assert len(registry) == 3

    def test_counts_by_state(self):
        registry = RunRegistry()
        registry.create({"scenario": "s"})
        running = registry.create({"scenario": "s"})
        running.set_running()
        counts = registry.counts()
        assert counts[STATE_QUEUED] == 1 and counts[STATE_RUNNING] == 1
        assert sum(counts.values()) == 2
        assert set(counts) == set(RUN_STATES)


class TestSnapshotRing:
    def test_ring_retains_newest(self):
        run = RunRegistry(retain=4).create({"scenario": "s"})
        for seq in range(10):
            run.add_snapshot(_snap(seq))
        assert run.total_snapshots == 10
        assert run.first_seq == 6
        assert [snap["seq"] for snap in run.snapshots] == [6, 7, 8, 9]
        assert run.latest()["seq"] == 9

    def test_snapshots_from_clamps_to_ring(self):
        run = RunRegistry(retain=4).create({"scenario": "s"})
        for seq in range(6):
            run.add_snapshot(_snap(seq))
        # Asking for evicted history yields what is still retained.
        assert [snap["seq"] for snap in run.snapshots_from(0)] \
            == [2, 3, 4, 5]
        assert [snap["seq"] for snap in run.snapshots_from(5)] == [5]
        assert run.snapshots_from(6) == []

    def test_wait_past_returns_on_data_and_on_finish(self):
        run = RunRegistry().create({"scenario": "s"})
        assert not run.wait_past(0, timeout=0.01)  # nothing yet
        run.add_snapshot(_snap(0))
        assert run.wait_past(0, timeout=0.01)
        assert not run.wait_past(1, timeout=0.01)
        run.finish({})
        assert run.wait_past(99, timeout=0.01)  # finished unblocks

    def test_summary_and_detail_reflect_latest(self):
        run = RunRegistry().create(validate_spec({"scenario": "quick-ht",
                                                  "seed": 3}))
        run.add_snapshot(_snap(0, committed=42, t_ns=5_000.0))
        summary = run.summary()
        assert summary["committed"] == 42
        assert summary["t_ns"] == 5_000.0
        assert summary["seed"] == 3
        detail = run.detail()
        assert detail["latest"]["seq"] == 0
        assert detail["retained"] == 1
        assert detail["spec"]["scenario"] == "quick-ht"


class TestValidateSpec:
    def test_fills_defaults(self):
        full = validate_spec({"scenario": "quick-ht"})
        assert full["protocol"] == "hades"
        assert full["seed"] == 42
        assert full["duration_us"] == 200.0

    def test_requires_scenario(self):
        with pytest.raises(ValueError, match="scenario"):
            validate_spec({})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            validate_spec({"scenario": "quick-ht", "duration_ms": 1})

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_spec(["quick-ht"])

    def test_rejects_bad_protocol_at_post_time(self):
        with pytest.raises(ValueError):
            validate_spec({"scenario": "quick-ht",
                           "protocol": "no-such-protocol"})

    def test_rejects_bad_override_at_post_time(self):
        with pytest.raises(ValueError):
            validate_spec({"scenario": "quick-ht",
                           "overrides": ["load.not_a_field=3"]})

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            validate_spec({"scenario": "quick-ht", "duration_us": 0})

    def test_cell_round_trip(self):
        full = validate_spec({"scenario": "quick-ht", "seed": 9,
                              "duration_us": 50.0, "rate": 1e6,
                              "overrides": ["load.queue_capacity=16"]})
        cell = cell_from_spec(full)
        assert cell.seed == 9
        assert cell.duration_ns == 50_000.0
        assert cell.rate == 1e6
        assert cell.overrides == (("load.queue_capacity", "16"),)


class TestPrometheus:
    def test_empty_registry_renders_state_gauge(self):
        text = render_prometheus(RunRegistry())
        assert 'repro_runs{state="queued"} 0' in text
        assert "repro_run_committed_total" not in text

    def test_run_with_snapshot_renders_families(self):
        registry = RunRegistry()
        run = registry.create({"scenario": "quick-ht"})
        run.set_running()
        run.add_snapshot(_snap(0, committed=17))
        text = render_prometheus(registry)
        assert 'repro_runs{state="running"} 1' in text
        assert 'repro_run_committed_total{run="r1"} 17' in text
        assert 'repro_run_queue_depth{node="0",run="r1"} 3' in text
        assert 'repro_run_shed_total{reason="capacity:0",run="r1"} 1' \
            in text
        assert text.endswith("\n")

    def test_help_and_type_preambles(self):
        registry = RunRegistry()
        registry.create({"scenario": "s"}).add_snapshot(_snap(0))
        text = render_prometheus(registry)
        for family in ("repro_runs", "repro_run_snapshots_total"):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text
