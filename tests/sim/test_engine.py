"""Tests for the discrete-event engine and process model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, Engine, HeapEngine, Interrupt, create_engine

#: Both engines must satisfy every dispatch-contract test below.
ENGINES = [Engine, HeapEngine]


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_runs_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30.0, lambda: seen.append("c"))
    engine.schedule(10.0, lambda: seen.append("a"))
    engine.schedule(20.0, lambda: seen.append("b"))
    engine.run()
    assert seen == ["a", "b", "c"]
    assert engine.now == 30.0


def test_same_time_events_run_in_schedule_order():
    engine = Engine()
    seen = []
    for label in "abc":
        engine.schedule(5.0, seen.append, label)
    engine.run()
    assert seen == ["a", "b", "c"]


def test_schedule_in_past_rejected():
    with pytest.raises(ValueError):
        Engine().schedule(-1.0, lambda: None)


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    seen = []
    engine.schedule(10.0, seen.append, "early")
    engine.schedule(100.0, seen.append, "late")
    engine.run(until=50.0)
    assert seen == ["early"]
    assert engine.now == 50.0
    engine.run()
    assert seen == ["early", "late"]


def test_process_delay_advances_clock():
    engine = Engine()
    trace = []

    def worker():
        trace.append(engine.now)
        yield 100.0
        trace.append(engine.now)
        yield 50.0
        trace.append(engine.now)

    engine.process(worker())
    engine.run()
    assert trace == [0.0, 100.0, 150.0]


def test_process_return_value_visible_to_waiter():
    engine = Engine()
    results = []

    def child():
        yield 10.0
        return 42

    def parent():
        value = yield engine.process(child())
        results.append(value)

    engine.process(parent())
    engine.run()
    assert results == [42]


def test_process_wait_on_event_gets_value():
    engine = Engine()
    event = engine.event()
    results = []

    def waiter():
        value = yield event
        results.append((engine.now, value))

    def firer():
        yield 25.0
        event.succeed("payload")

    engine.process(waiter())
    engine.process(firer())
    engine.run()
    assert results == [(25.0, "payload")]


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_all_of_waits_for_every_child():
    engine = Engine()
    events = [engine.timeout(t, value=t) for t in (30.0, 10.0, 20.0)]
    results = []

    def waiter():
        values = yield AllOf(engine, events)
        results.append((engine.now, values))

    engine.process(waiter())
    engine.run()
    assert results == [(30.0, [30.0, 10.0, 20.0])]


def test_all_of_empty_triggers_immediately():
    engine = Engine()
    results = []

    def waiter():
        values = yield AllOf(engine, [])
        results.append((engine.now, values))

    engine.process(waiter())
    engine.run()
    assert results == [(0.0, [])]


def test_interrupt_wakes_process_with_exception():
    engine = Engine()
    trace = []

    def victim():
        try:
            yield 1000.0
            trace.append("not reached")
        except Interrupt as interrupt:
            trace.append(("interrupted", engine.now, interrupt.cause))

    process = engine.process(victim())

    def attacker():
        yield 40.0
        process.interrupt("squash")

    engine.process(attacker())
    engine.run()
    assert trace == [("interrupted", 40.0, "squash")]


def test_interrupted_process_not_resumed_by_stale_event():
    engine = Engine()
    event = engine.event()
    resumed = []

    def victim():
        try:
            yield event
            resumed.append("event")
        except Interrupt:
            yield 5.0
            resumed.append("recovered")

    process = engine.process(victim())

    def driver():
        yield 10.0
        process.interrupt()
        yield 1.0
        event.succeed("late")

    engine.process(driver())
    engine.run()
    assert resumed == ["recovered"]


def test_interrupt_dead_process_is_noop():
    engine = Engine()

    def quick():
        yield 1.0

    process = engine.process(quick())
    engine.run()
    assert not process.is_alive
    process.interrupt()  # must not raise
    engine.run()


def test_uncaught_interrupt_kills_process_quietly():
    engine = Engine()

    def victim():
        yield 1000.0

    process = engine.process(victim())
    engine.schedule(10.0, process.interrupt)
    engine.run()
    assert not process.is_alive


def test_process_error_propagates_to_waiter():
    engine = Engine()
    caught = []

    def broken():
        yield 1.0
        raise RuntimeError("boom")

    def parent():
        try:
            yield engine.process(broken())
        except RuntimeError as error:
            caught.append(str(error))

    engine.process(parent())
    engine.run()
    assert caught == ["boom"]


def test_unwaited_process_error_raises_out_of_run():
    engine = Engine()

    def broken():
        yield 1.0
        raise ValueError("unobserved")

    engine.process(broken())
    with pytest.raises(ValueError, match="unobserved"):
        engine.run()


def test_yield_none_resumes_after_now_events():
    engine = Engine()
    trace = []

    def yielder():
        trace.append("first")
        yield None
        trace.append("third")

    engine.process(yielder())
    engine.schedule(0.0, trace.append, "second")
    engine.run()
    assert trace.index("first") < trace.index("second") < trace.index("third")


def test_yield_bad_type_fails_process():
    engine = Engine()

    def bad():
        yield "not yieldable"

    engine.process(bad())
    with pytest.raises(TypeError):
        engine.run()


def test_peek_reports_next_event_time():
    engine = Engine()
    assert engine.peek() is None
    engine.schedule(12.0, lambda: None)
    assert engine.peek() == 12.0


def test_cancel_skips_callback_without_advancing_clock():
    engine = Engine()
    seen = []
    entry = engine.schedule(50.0, seen.append, "cancelled")
    engine.schedule(10.0, seen.append, "live")
    engine.cancel(entry)
    engine.run()
    assert seen == ["live"]
    assert engine.now == 10.0  # the dead entry must not advance time


def test_cancel_is_idempotent():
    engine = Engine()
    entry = engine.schedule(5.0, lambda: None)
    engine.cancel(entry)
    engine.cancel(entry)  # must not raise or double-count
    engine.run()
    assert engine.now == 0.0


def test_events_processed_counts_only_executed_callbacks():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.cancel(engine.schedule(3.0, lambda: None))
    engine.run()
    assert engine.events_processed == 2


def test_peek_skips_cancelled_entries():
    engine = Engine()
    entry = engine.schedule(5.0, lambda: None)
    engine.schedule(20.0, lambda: None)
    engine.cancel(entry)
    assert engine.peek() == 20.0


def test_abandoned_timers_do_not_grow_queue_unboundedly():
    """Regression: a retry storm arms and abandons timers far faster
    than their deadlines pass.  Without compaction every dead entry
    squats in the heap until its (far-future) deadline."""
    engine = Engine()
    for _ in range(10):
        entries = [engine.schedule(1e9, lambda: None) for _ in range(50)]
        for entry in entries:
            engine.cancel(entry)
        # Compaction keeps the heap near its live size (0 here), far
        # below the 500 entries scheduled overall.
        assert len(engine._queue) <= 150


def test_cancelled_sleep_does_not_wake_process():
    engine = Engine()
    trace = []

    def sleeper():
        try:
            yield 100.0
            trace.append("woke")
        except Interrupt:
            trace.append(("interrupted", engine.now))
            yield 7.0
            trace.append(("slept again", engine.now))

    process = engine.process(sleeper())
    engine.schedule(30.0, process.interrupt)
    engine.run()
    # The 100 ns wake-up was cancelled: time never reaches it.
    assert trace == [("interrupted", 30.0), ("slept again", 37.0)]
    assert engine.now == 37.0


@given(st.lists(st.sampled_from([0.0, 1.0, 2.0, 5.0]), min_size=1,
                max_size=60))
@settings(max_examples=100, deadline=None)
def test_heap_tie_break_preserves_schedule_order(delays):
    """Same-time events run in schedule order, regardless of how they
    interleave with other timestamps (the heap entries' unique sequence
    numbers are the only tie-break)."""
    engine = Engine()
    seen = []
    for index, delay in enumerate(delays):
        engine.schedule(delay, seen.append, (delay, index))
    engine.run()
    expected = sorted(((delay, index) for index, delay in enumerate(delays)),
                      key=lambda pair: (pair[0], pair[1]))
    assert seen == expected


def test_nested_generators_compose_with_yield_from():
    engine = Engine()
    trace = []

    def inner():
        yield 10.0
        return "inner-done"

    def outer():
        value = yield from inner()
        trace.append((engine.now, value))

    engine.process(outer())
    engine.run()
    assert trace == [(10.0, "inner-done")]


# -- lifecycle regressions (cancel-after-fire, negative sleeps) --------


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_cancel_after_fire_is_true_noop(engine_cls):
    """Regression: a retry loop arms a timeout, the timeout fires, and
    the loop's cleanup cancels the stale handle afterwards.  The cancel
    must not count the already-fired entry as cancelled — doing so
    underflows the cancellation counter the compaction trigger and the
    run loop's skip accounting rely on."""
    engine = engine_cls()
    fired = []
    for attempt in range(6):
        entry = engine.schedule(1.0, fired.append, attempt)
        engine.run()
        engine.cancel(entry)  # stale: the timer already fired
        engine.cancel(entry)  # idempotent on the husk too
    assert fired == list(range(6))
    assert engine.events_processed == 6
    assert engine._cancelled == 0


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_cancel_after_fire_does_not_skew_compaction(engine_cls):
    """Stale cancels of fired entries must not push the cancelled
    counter past the live-entry count and trigger bogus compactions
    (or, worse, leave the counter negative after the run loop skips
    entries it believes are cancelled)."""
    engine = engine_cls()
    fired = []
    handles = [engine.schedule(1.0, fired.append, n) for n in range(100)]
    engine.run()
    for entry in handles:
        engine.cancel(entry)
    assert engine._cancelled == 0
    assert len(fired) == 100
    # The queues are empty; a fresh schedule/run cycle still works.
    engine.schedule(5.0, fired.append, "after")
    engine.run()
    assert fired[-1] == "after"


class _RecordingTracer:
    """Minimal tracer capturing process lifecycle hooks."""

    capture_schedules = False

    def __init__(self):
        self.events = []

    def engine_schedule(self, now, when, label):
        pass

    def process_start(self, now, name):
        self.events.append(("start", name))

    def process_end(self, now, name, outcome):
        self.events.append(("end", name, outcome))


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_negative_sleep_dies_with_consistent_bookkeeping(engine_cls):
    """A negative sleep must kill the process through the normal
    ``_finish`` path: ``is_alive`` drops, the live-process count drops,
    the tracer sees ``process_end``, and (with nobody waiting) the
    ValueError still raises out of ``run``."""
    engine = engine_cls()
    tracer = _RecordingTracer()
    engine.tracer = tracer

    def bad_sleeper():
        yield 5.0
        yield -1.0

    process = engine.process(bad_sleeper(), name="bad")
    with pytest.raises(ValueError, match="negative delay"):
        engine.run()
    assert not process.is_alive
    assert engine._active == 0
    assert ("end", "bad", "ValueError") in tracer.events


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_negative_sleep_error_routes_to_waiter(engine_cls):
    """With a waiter attached the negative-sleep death is an ordinary
    process failure: delivered to the waiter, not raised out of run."""
    engine = engine_cls()
    caught = []

    def bad():
        yield -3.0

    def parent():
        try:
            yield engine.process(bad())
        except ValueError as error:
            caught.append(str(error))

    engine.process(parent())
    engine.run()
    assert caught == ["negative delay: -3.0"]
    assert engine._active == 0


def test_create_engine_honors_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert type(create_engine()) is Engine
    monkeypatch.setenv("REPRO_ENGINE", "heap")
    assert type(create_engine()) is HeapEngine
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert type(create_engine()) is HeapEngine
    monkeypatch.setenv("REPRO_ENGINE", "wheel")
    assert type(create_engine()) is Engine


# -- wheel/batch engine vs. reference heap equivalence -----------------

#: Delays chosen to straddle the wheel's interesting boundaries: zero,
#: within one slot (64 ns), exactly on slot edges, several slots out,
#: just past the wheel horizon (1024 slots = 65,536 ns), and far beyond.
_DELAYS = st.sampled_from([0.0, 1.0, 3.5, 63.0, 64.0, 65.0, 128.0,
                           1000.0, 65_535.0, 65_600.0, 1e9])

_OPS = st.one_of(
    st.tuples(st.just("schedule"), _DELAYS),
    st.tuples(st.just("storm"), _DELAYS, st.integers(2, 5)),
    st.tuples(st.just("cancel"), st.integers(0, 40)),
    st.tuples(st.just("late_cancel"), _DELAYS, st.integers(0, 40)),
    st.tuples(st.just("process"), st.lists(_DELAYS, min_size=1,
                                           max_size=4)),
    st.tuples(st.just("interrupt"), st.integers(0, 10), _DELAYS),
)


def _run_script(engine_cls, ops):
    """Interpret one generated scenario on ``engine_cls``; return the
    observable dispatch record."""
    engine = engine_cls()
    log = []
    handles = []
    processes = []

    def sleeper(pid, delays):
        for delay in delays:
            try:
                yield delay
                log.append(("woke", pid, engine.now))
            except Interrupt:
                log.append(("interrupted", pid, engine.now))
        return pid

    def late_cancel(which):
        if handles:
            engine.cancel(handles[which % len(handles)])

    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "schedule":
            handles.append(engine.schedule(op[1], log.append,
                                           ("cb", index)))
        elif kind == "storm":
            for burst in range(op[2]):
                handles.append(engine.schedule(op[1], log.append,
                                               ("storm", index, burst)))
        elif kind == "cancel":
            if handles:
                engine.cancel(handles[op[1] % len(handles)])
        elif kind == "late_cancel":
            engine.schedule(op[1], late_cancel, op[2])
        elif kind == "process":
            processes.append(engine.process(sleeper(index, op[1])))
        elif kind == "interrupt":
            if processes:
                target = processes[op[1] % len(processes)]
                engine.schedule(op[2], target.interrupt)
    final = engine.run()
    return log, engine.events_processed, final


@given(st.lists(_OPS, min_size=1, max_size=40))
@settings(max_examples=120, deadline=None)
def test_wheel_engine_matches_reference_heap(ops):
    """The wheel+batch engine and the reference heap must produce the
    identical dispatch order, event count, and final clock for any mix
    of schedules, same-timestamp storms, cancels (including cancels
    issued mid-run and cancels of already-fired entries), processes,
    and interrupts."""
    assert _run_script(Engine, ops) == _run_script(HeapEngine, ops)
