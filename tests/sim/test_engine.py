"""Tests for the discrete-event engine and process model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, Engine, Interrupt


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_runs_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30.0, lambda: seen.append("c"))
    engine.schedule(10.0, lambda: seen.append("a"))
    engine.schedule(20.0, lambda: seen.append("b"))
    engine.run()
    assert seen == ["a", "b", "c"]
    assert engine.now == 30.0


def test_same_time_events_run_in_schedule_order():
    engine = Engine()
    seen = []
    for label in "abc":
        engine.schedule(5.0, seen.append, label)
    engine.run()
    assert seen == ["a", "b", "c"]


def test_schedule_in_past_rejected():
    with pytest.raises(ValueError):
        Engine().schedule(-1.0, lambda: None)


def test_run_until_stops_and_advances_clock():
    engine = Engine()
    seen = []
    engine.schedule(10.0, seen.append, "early")
    engine.schedule(100.0, seen.append, "late")
    engine.run(until=50.0)
    assert seen == ["early"]
    assert engine.now == 50.0
    engine.run()
    assert seen == ["early", "late"]


def test_process_delay_advances_clock():
    engine = Engine()
    trace = []

    def worker():
        trace.append(engine.now)
        yield 100.0
        trace.append(engine.now)
        yield 50.0
        trace.append(engine.now)

    engine.process(worker())
    engine.run()
    assert trace == [0.0, 100.0, 150.0]


def test_process_return_value_visible_to_waiter():
    engine = Engine()
    results = []

    def child():
        yield 10.0
        return 42

    def parent():
        value = yield engine.process(child())
        results.append(value)

    engine.process(parent())
    engine.run()
    assert results == [42]


def test_process_wait_on_event_gets_value():
    engine = Engine()
    event = engine.event()
    results = []

    def waiter():
        value = yield event
        results.append((engine.now, value))

    def firer():
        yield 25.0
        event.succeed("payload")

    engine.process(waiter())
    engine.process(firer())
    engine.run()
    assert results == [(25.0, "payload")]


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_all_of_waits_for_every_child():
    engine = Engine()
    events = [engine.timeout(t, value=t) for t in (30.0, 10.0, 20.0)]
    results = []

    def waiter():
        values = yield AllOf(engine, events)
        results.append((engine.now, values))

    engine.process(waiter())
    engine.run()
    assert results == [(30.0, [30.0, 10.0, 20.0])]


def test_all_of_empty_triggers_immediately():
    engine = Engine()
    results = []

    def waiter():
        values = yield AllOf(engine, [])
        results.append((engine.now, values))

    engine.process(waiter())
    engine.run()
    assert results == [(0.0, [])]


def test_interrupt_wakes_process_with_exception():
    engine = Engine()
    trace = []

    def victim():
        try:
            yield 1000.0
            trace.append("not reached")
        except Interrupt as interrupt:
            trace.append(("interrupted", engine.now, interrupt.cause))

    process = engine.process(victim())

    def attacker():
        yield 40.0
        process.interrupt("squash")

    engine.process(attacker())
    engine.run()
    assert trace == [("interrupted", 40.0, "squash")]


def test_interrupted_process_not_resumed_by_stale_event():
    engine = Engine()
    event = engine.event()
    resumed = []

    def victim():
        try:
            yield event
            resumed.append("event")
        except Interrupt:
            yield 5.0
            resumed.append("recovered")

    process = engine.process(victim())

    def driver():
        yield 10.0
        process.interrupt()
        yield 1.0
        event.succeed("late")

    engine.process(driver())
    engine.run()
    assert resumed == ["recovered"]


def test_interrupt_dead_process_is_noop():
    engine = Engine()

    def quick():
        yield 1.0

    process = engine.process(quick())
    engine.run()
    assert not process.is_alive
    process.interrupt()  # must not raise
    engine.run()


def test_uncaught_interrupt_kills_process_quietly():
    engine = Engine()

    def victim():
        yield 1000.0

    process = engine.process(victim())
    engine.schedule(10.0, process.interrupt)
    engine.run()
    assert not process.is_alive


def test_process_error_propagates_to_waiter():
    engine = Engine()
    caught = []

    def broken():
        yield 1.0
        raise RuntimeError("boom")

    def parent():
        try:
            yield engine.process(broken())
        except RuntimeError as error:
            caught.append(str(error))

    engine.process(parent())
    engine.run()
    assert caught == ["boom"]


def test_unwaited_process_error_raises_out_of_run():
    engine = Engine()

    def broken():
        yield 1.0
        raise ValueError("unobserved")

    engine.process(broken())
    with pytest.raises(ValueError, match="unobserved"):
        engine.run()


def test_yield_none_resumes_after_now_events():
    engine = Engine()
    trace = []

    def yielder():
        trace.append("first")
        yield None
        trace.append("third")

    engine.process(yielder())
    engine.schedule(0.0, trace.append, "second")
    engine.run()
    assert trace.index("first") < trace.index("second") < trace.index("third")


def test_yield_bad_type_fails_process():
    engine = Engine()

    def bad():
        yield "not yieldable"

    engine.process(bad())
    with pytest.raises(TypeError):
        engine.run()


def test_peek_reports_next_event_time():
    engine = Engine()
    assert engine.peek() is None
    engine.schedule(12.0, lambda: None)
    assert engine.peek() == 12.0


def test_cancel_skips_callback_without_advancing_clock():
    engine = Engine()
    seen = []
    entry = engine.schedule(50.0, seen.append, "cancelled")
    engine.schedule(10.0, seen.append, "live")
    engine.cancel(entry)
    engine.run()
    assert seen == ["live"]
    assert engine.now == 10.0  # the dead entry must not advance time


def test_cancel_is_idempotent():
    engine = Engine()
    entry = engine.schedule(5.0, lambda: None)
    engine.cancel(entry)
    engine.cancel(entry)  # must not raise or double-count
    engine.run()
    assert engine.now == 0.0


def test_events_processed_counts_only_executed_callbacks():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.cancel(engine.schedule(3.0, lambda: None))
    engine.run()
    assert engine.events_processed == 2


def test_peek_skips_cancelled_entries():
    engine = Engine()
    entry = engine.schedule(5.0, lambda: None)
    engine.schedule(20.0, lambda: None)
    engine.cancel(entry)
    assert engine.peek() == 20.0


def test_abandoned_timers_do_not_grow_queue_unboundedly():
    """Regression: a retry storm arms and abandons timers far faster
    than their deadlines pass.  Without compaction every dead entry
    squats in the heap until its (far-future) deadline."""
    engine = Engine()
    for _ in range(10):
        entries = [engine.schedule(1e9, lambda: None) for _ in range(50)]
        for entry in entries:
            engine.cancel(entry)
        # Compaction keeps the heap near its live size (0 here), far
        # below the 500 entries scheduled overall.
        assert len(engine._queue) <= 150


def test_cancelled_sleep_does_not_wake_process():
    engine = Engine()
    trace = []

    def sleeper():
        try:
            yield 100.0
            trace.append("woke")
        except Interrupt:
            trace.append(("interrupted", engine.now))
            yield 7.0
            trace.append(("slept again", engine.now))

    process = engine.process(sleeper())
    engine.schedule(30.0, process.interrupt)
    engine.run()
    # The 100 ns wake-up was cancelled: time never reaches it.
    assert trace == [("interrupted", 30.0), ("slept again", 37.0)]
    assert engine.now == 37.0


@given(st.lists(st.sampled_from([0.0, 1.0, 2.0, 5.0]), min_size=1,
                max_size=60))
@settings(max_examples=100, deadline=None)
def test_heap_tie_break_preserves_schedule_order(delays):
    """Same-time events run in schedule order, regardless of how they
    interleave with other timestamps (the heap entries' unique sequence
    numbers are the only tie-break)."""
    engine = Engine()
    seen = []
    for index, delay in enumerate(delays):
        engine.schedule(delay, seen.append, (delay, index))
    engine.run()
    expected = sorted(((delay, index) for index, delay in enumerate(delays)),
                      key=lambda pair: (pair[0], pair[1]))
    assert seen == expected


def test_nested_generators_compose_with_yield_from():
    engine = Engine()
    trace = []

    def inner():
        yield 10.0
        return "inner-done"

    def outer():
        value = yield from inner()
        trace.append((engine.now, value))

    engine.process(outer())
    engine.run()
    assert trace == [(10.0, "inner-done")]
