"""Tests for event combinators."""

import pytest

from repro.sim import AnyOf, Engine
from repro.sim.events import Timeout


def test_timeout_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        Timeout(engine, -5.0)


def test_timeout_carries_value():
    engine = Engine()
    received = []

    def waiter():
        value = yield engine.timeout(7.0, value="hello")
        received.append(value)

    engine.process(waiter())
    engine.run()
    assert received == ["hello"]


def test_any_of_fires_on_first_child():
    engine = Engine()
    events = [engine.timeout(50.0, "slow"), engine.timeout(10.0, "fast")]
    received = []

    def waiter():
        index, value = yield AnyOf(engine, events)
        received.append((engine.now, index, value))

    engine.process(waiter())
    engine.run()
    assert received == [(10.0, 1, "fast")]


def test_any_of_requires_children():
    engine = Engine()
    with pytest.raises(ValueError):
        AnyOf(engine, [])


def test_callback_on_already_triggered_event_runs():
    engine = Engine()
    event = engine.event()
    event.succeed(3)
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    engine.run()
    assert seen == [3]


def test_remove_callback_prevents_delivery():
    engine = Engine()
    event = engine.event()
    seen = []
    callback = lambda e: seen.append(e.value)  # noqa: E731
    event.add_callback(callback)
    event.remove_callback(callback)
    event.succeed(1)
    engine.run()
    assert seen == []


def test_remove_unknown_callback_is_noop():
    engine = Engine()
    event = engine.event()
    event.remove_callback(lambda e: None)  # must not raise
