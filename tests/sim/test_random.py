"""Tests for the deterministic RNG and zipfian generator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import (
    DeterministicRandom,
    UniformGenerator,
    ZipfianGenerator,
    exponential_backoff,
    fnv1a_64,
    percentile,
)


def test_deterministic_random_reproducible():
    first = [DeterministicRandom(42).random() for _ in range(5)]
    second = [DeterministicRandom(42).random() for _ in range(5)]
    assert first == second


def test_choice_weighted_respects_weights():
    rng = DeterministicRandom(7)
    draws = [rng.choice_weighted(["a", "b"], [0.99, 0.01]) for _ in range(500)]
    assert draws.count("a") > 450


def test_choice_weighted_returns_last_on_rounding():
    rng = DeterministicRandom(1)
    assert rng.choice_weighted(["only"], [1.0]) == "only"


def test_distinct_sample_distinct():
    rng = DeterministicRandom(3)
    sample = rng.distinct_sample(100, 10)
    assert len(set(sample)) == 10
    assert all(0 <= value < 100 for value in sample)


def test_distinct_sample_rejects_oversample():
    with pytest.raises(ValueError):
        DeterministicRandom(0).distinct_sample(3, 5)


def test_zipfian_rank_zero_most_popular():
    gen = ZipfianGenerator(1000, rng=DeterministicRandom(5), scrambled=False)
    counts = {}
    for _ in range(20000):
        rank = gen.next_rank()
        counts[rank] = counts.get(rank, 0) + 1
    assert counts.get(0, 0) > counts.get(10, 0) > counts.get(500, 0)


def test_zipfian_keys_in_range():
    gen = ZipfianGenerator(50, rng=DeterministicRandom(9))
    for _ in range(1000):
        assert 0 <= gen.next_key() < 50


def test_zipfian_probability_mass_sums_to_one():
    gen = ZipfianGenerator(200, rng=DeterministicRandom(0))
    total = sum(gen.probability_of_rank(rank) for rank in range(200))
    assert math.isclose(total, 1.0, rel_tol=1e-9)


def test_zipfian_empirical_matches_analytic_head():
    gen = ZipfianGenerator(100, rng=DeterministicRandom(11), scrambled=False)
    draws = 50000
    zero_count = sum(1 for _ in range(draws) if gen.next_rank() == 0)
    expected = gen.probability_of_rank(0)
    assert abs(zero_count / draws - expected) < 0.02


def test_zipfian_scrambling_spreads_popular_keys():
    plain = ZipfianGenerator(1000, rng=DeterministicRandom(2), scrambled=False)
    scrambled = ZipfianGenerator(1000, rng=DeterministicRandom(2), scrambled=True)
    plain_keys = {plain.next_key() for _ in range(100)}
    scrambled_keys = {scrambled.next_key() for _ in range(100)}
    # Unscrambled draws concentrate near 0; scrambled draws spread out.
    assert max(plain_keys) < max(scrambled_keys)


def test_zipfian_validates_parameters():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.5)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=0.0)


def test_zipfian_rank_bounds_checked():
    gen = ZipfianGenerator(10, rng=DeterministicRandom(0))
    with pytest.raises(ValueError):
        gen.probability_of_rank(10)


def test_uniform_generator_covers_range():
    gen = UniformGenerator(10, rng=DeterministicRandom(4))
    keys = {gen.next_key() for _ in range(500)}
    assert keys == set(range(10))


def test_fnv1a_deterministic_and_64bit():
    assert fnv1a_64(12345) == fnv1a_64(12345)
    assert 0 <= fnv1a_64(2 ** 63) < 2 ** 64
    assert fnv1a_64(1) != fnv1a_64(2)


def test_exponential_backoff_grows_then_caps():
    rng = DeterministicRandom(8)
    cap = 1000.0
    for attempt in range(20):
        delay = exponential_backoff(rng, attempt, base_ns=10.0, cap_ns=cap)
        assert 0.0 <= delay <= cap
    with pytest.raises(ValueError):
        exponential_backoff(rng, -1, 10.0, cap)


def test_percentile_simple_cases():
    assert percentile([5.0], 0.95) == 5.0
    assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
    assert percentile([1.0, 2.0], 1.0) == 2.0
    assert percentile([1.0, 2.0], 0.0) == 1.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_percentile_bounded_by_min_max(values, fraction):
    result = percentile(values, fraction)
    assert min(values) <= result <= max(values)


@given(st.integers(min_value=2, max_value=10000))
@settings(max_examples=50, deadline=None)
def test_zipfian_keys_always_in_range(item_count):
    gen = ZipfianGenerator(item_count, rng=DeterministicRandom(item_count))
    for _ in range(20):
        assert 0 <= gen.next_key() < item_count
