"""Tests for the statistics collectors."""

import pytest

from repro.sim.stats import (
    Counter,
    LatencyRecorder,
    PhaseBreakdown,
    RunMetrics,
    ThroughputMeter,
)


def test_counter_defaults_to_zero():
    counter = Counter()
    assert counter.get("missing") == 0


def test_counter_accumulates():
    counter = Counter()
    counter.add("squash")
    counter.add("squash", 2)
    assert counter.get("squash") == 3
    assert counter.as_dict() == {"squash": 3}


def test_counter_top_orders_and_breaks_ties():
    counter = Counter()
    counter.add("b", 5)
    counter.add("a", 5)
    counter.add("c", 9)
    counter.add("d", 1)
    assert counter.top(3) == [("c", 9), ("a", 5), ("b", 5)]
    assert counter.top(0) == []
    assert counter.top(10) == [("c", 9), ("a", 5), ("b", 5), ("d", 1)]
    with pytest.raises(ValueError):
        counter.top(-1)


def test_counter_ratio_safe_on_zero_denominator():
    counter = Counter()
    counter.add("hits", 5)
    assert counter.ratio("hits", "checks") == 0.0
    counter.add("checks", 10)
    assert counter.ratio("hits", "checks") == 0.5


def test_latency_recorder_mean_and_percentile():
    recorder = LatencyRecorder()
    for value in [100.0, 200.0, 300.0, 400.0]:
        recorder.record(value)
    assert recorder.mean() == 250.0
    assert recorder.count == 4
    assert recorder.percentile(0.5) == 250.0
    assert recorder.p95() == pytest.approx(385.0)


def test_latency_recorder_empty_is_zero():
    recorder = LatencyRecorder()
    assert recorder.mean() == 0.0
    assert recorder.p95() == 0.0


def test_latency_recorder_rejects_negative():
    with pytest.raises(ValueError):
        LatencyRecorder().record(-1.0)


def test_phase_breakdown_fractions_sum_to_one():
    phases = PhaseBreakdown()
    phases.add("execution", 60.0)
    phases.add("validation", 30.0)
    phases.add("commit", 10.0)
    fractions = phases.fractions()
    assert fractions["execution"] == pytest.approx(0.6)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_phase_breakdown_mean_per_transaction():
    phases = PhaseBreakdown()
    phases.add("execution", 100.0)
    phases.finish_transaction()
    phases.add("execution", 300.0)
    phases.finish_transaction()
    assert phases.transactions == 2
    assert phases.mean_per_transaction() == {"execution": 200.0}


def test_phase_breakdown_rejects_negative_duration():
    with pytest.raises(ValueError):
        PhaseBreakdown().add("execution", -1.0)


def test_phase_breakdown_empty_fractions():
    assert PhaseBreakdown().fractions() == {}
    assert PhaseBreakdown().mean_per_transaction() == {}


def test_throughput_meter():
    meter = ThroughputMeter()
    for _ in range(10):
        meter.commit()
    meter.abort()
    assert meter.throughput(1e9) == 10.0  # 10 commits in one second
    assert meter.attempts == 11
    assert meter.abort_rate() == pytest.approx(1 / 11)


def test_throughput_meter_zero_elapsed_reports_zero():
    meter = ThroughputMeter()
    meter.commit()
    assert meter.throughput(0.0) == 0.0
    assert meter.throughput(-1.0) == 0.0


def test_abort_rate_zero_when_no_attempts():
    assert ThroughputMeter().abort_rate() == 0.0


def test_run_metrics_summary():
    metrics = RunMetrics()
    metrics.meter.commit()
    metrics.latency.record(500.0)
    metrics.elapsed_ns = 1e6
    summary = metrics.summary()
    assert summary["committed"] == 1.0
    assert summary["mean_latency_ns"] == 500.0
    assert summary["throughput_tps"] == pytest.approx(1e3)
    assert summary["no_progress"] == 0.0


def test_run_metrics_summary_without_elapsed():
    summary = RunMetrics().summary()
    assert summary["throughput_tps"] == 0.0
    assert summary["no_progress"] == 1.0
