"""Tests for sweep grid expansion, sorting, and config overrides."""

import json

import pytest

from repro.sweep.grid import (
    GridCell,
    SweepSpec,
    apply_overrides,
    parse_override,
)
from repro.config import ClusterConfig


class TestParseOverride:
    def test_splits_on_first_equals(self):
        assert parse_override("network.rt_latency_ns=1000") == (
            "network.rt_latency_ns", "1000")

    @pytest.mark.parametrize("bad", ["no-equals", "=value", "key=", "="])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_override(bad)


class TestApplyOverrides:
    def test_nested_float_field(self):
        config = apply_overrides(ClusterConfig(),
                                 [("network.rt_latency_ns", "1000")])
        assert config.network.rt_latency_ns == 1000.0
        # The original default is untouched (configs are frozen).
        assert ClusterConfig().network.rt_latency_ns == 2000.0

    def test_top_level_int_field(self):
        config = apply_overrides(ClusterConfig(), [("nodes", "3")])
        assert config.nodes == 3

    def test_bool_field(self):
        config = apply_overrides(ClusterConfig(),
                                 [("partial_locking", "false")])
        assert config.partial_locking is False
        with pytest.raises(ValueError):
            apply_overrides(ClusterConfig(), [("partial_locking", "maybe")])

    def test_unknown_field_names_candidates(self):
        with pytest.raises(ValueError, match="rt_latency_ns"):
            apply_overrides(ClusterConfig(), [("network.nope", "1")])

    def test_cannot_descend_into_scalar(self):
        with pytest.raises(ValueError, match="scalar"):
            apply_overrides(ClusterConfig(), [("nodes.deeper", "1")])

    def test_cannot_replace_whole_subtree(self):
        with pytest.raises(ValueError, match="leaves"):
            apply_overrides(ClusterConfig(), [("network", "fast")])


class TestGridCell:
    def test_sorts_by_grid_key(self):
        cells = [GridCell("b", "hades", 2), GridCell("a", "hades", 9),
                 GridCell("a", "baseline", 1), GridCell("a", "hades", 1)]
        assert sorted(cells, key=lambda c: c.key) == [
            GridCell("a", "baseline", 1), GridCell("a", "hades", 1),
            GridCell("a", "hades", 9), GridCell("b", "hades", 2)]

    def test_cell_id_is_path_safe(self):
        cell = GridCell("B+Tree-wB", "hades-h", 42)
        assert "/" not in cell.cell_id
        assert "+" not in cell.cell_id
        assert cell.cell_id == "B-Tree-wB.hades-h.s42"

    def test_config_applies_slo_and_overrides(self):
        cell = GridCell("HT-wA", "hades", 1, slo="p99<50us",
                        overrides=(("network.rt_latency_ns", "500"),))
        config = cell.config()
        assert config.slo.enabled
        assert config.network.rt_latency_ns == 500.0


class TestSweepSpec:
    def test_expand_is_sorted_cross_product(self):
        spec = SweepSpec(scenarios=("z-last", "a-first"),
                         protocols=("hades", "baseline"), seeds=(2, 1))
        cells = spec.expand()
        assert len(cells) == 8
        assert [cell.key for cell in cells] == sorted(
            cell.key for cell in cells)
        assert cells[0].key == ("a-first", "baseline", 1)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            SweepSpec(scenarios=("a",), protocols=("nope",))

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            SweepSpec(scenarios=("a",), shape="mega")

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(scenarios=("a",), seeds=(1, 1))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(scenarios=())
        with pytest.raises(ValueError):
            SweepSpec(scenarios=("a",), seeds=())

    def test_round_trips_through_dict_and_file(self, tmp_path):
        spec = SweepSpec(scenarios=("HT-wA",), protocols=("hades",),
                         seeds=(1, 2), scale=0.02, duration_ns=30_000.0,
                         slo="p99<99us",
                         overrides=(("network.rt_latency_ns", "500"),))
        assert SweepSpec.from_dict(spec.as_dict()) == spec
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.as_dict()))
        assert SweepSpec.from_file(str(path)) == spec

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"scenarios": ["a"], "worker_count": 4})


class TestRateAxis:
    """The open-loop ``rates`` axis (docs/LOAD.md)."""

    def test_expand_crosses_rates(self):
        spec = SweepSpec(scenarios=("HT-wA",), protocols=("hades",),
                         seeds=(1,), rates=(1e6, 2e6))
        cells = spec.expand()
        assert len(cells) == 2
        assert [cell.rate for cell in cells] == [1e6, 2e6]
        assert cells[0].key == ("HT-wA", "hades", 1, 1e6)

    def test_closed_loop_key_unchanged(self):
        # No rates axis: the historical 3-tuple key and cell id survive,
        # so existing artifacts and baselines stay comparable.
        cell = GridCell("HT-wA", "hades", 1)
        assert cell.key == ("HT-wA", "hades", 1)
        assert cell.cell_id == "HT-wA.hades.s1"

    def test_rate_cell_id_is_unique(self):
        a = GridCell("HT-wA", "hades", 1, rate=1e6)
        b = GridCell("HT-wA", "hades", 1, rate=2e6)
        assert a.cell_id != b.cell_id
        assert a.cell_id.endswith(".r1000000")  # plain digits, not %g

    def test_config_enables_load_at_rate(self):
        cell = GridCell("HT-wA", "hades", 1, rate=3e6)
        config = cell.config()
        assert config.load.enabled
        assert config.load.rate_tps == 3e6
        assert not GridCell("HT-wA", "hades", 1).config().load.enabled

    def test_rate_composes_with_load_overrides(self):
        cell = GridCell("HT-wA", "hades", 1, rate=3e6,
                        overrides=(("load.shed_policy", "lifo"),
                                   ("load.queue_capacity", "16")))
        config = cell.config()
        assert config.load.shed_policy == "lifo"
        assert config.load.queue_capacity == 16
        assert config.load.rate_tps == 3e6

    def test_rates_round_trip_through_spec_dict(self):
        spec = SweepSpec(scenarios=("HT-wA",), protocols=("hades",),
                         rates=(1e6, 2e6))
        data = spec.as_dict()
        assert data["rates"] == [1e6, 2e6]
        assert SweepSpec.from_dict(data) == spec

    def test_rates_key_omitted_when_unused(self):
        # Pre-axis artifacts embed as_dict(); no new key may appear.
        assert "rates" not in SweepSpec(scenarios=("a",)).as_dict()

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SweepSpec(scenarios=("a",), rates=(0.0,))
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(scenarios=("a",), rates=(1e6, 1e6))
