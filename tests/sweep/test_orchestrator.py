"""Tests for the sweep orchestrator: determinism across worker counts,
failure handling, interruption, and the CLI surface."""

import json
import multiprocessing
import os

import pytest

from repro.sweep import SweepSpec, build_report, run_sweep
from repro.sweep import worker as worker_mod
from repro.sweep.orchestrator import write_sweep

#: A grid small enough for the suite: 2 scenarios x 2 protocols x 1 seed.
TINY = SweepSpec(scenarios=("HT-wA", "Smallbank"),
                 protocols=("baseline", "hades"), seeds=(7,),
                 scale=0.02, duration_ns=15_000.0)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _quiet(_message):
    pass


def _dump(report):
    return json.dumps(report, indent=1, sort_keys=True)


class TestDeterminism:
    def test_workers_1_vs_2_bit_identical(self, tmp_path):
        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        run_sweep(TINY, workers=1, out=str(serial), log=_quiet)
        run_sweep(TINY, workers=2, out=str(pooled), log=_quiet)
        assert serial.read_bytes() == pooled.read_bytes()

    def test_cells_sorted_by_grid_key_not_completion(self):
        report = run_sweep(TINY, workers=1, log=_quiet)
        keys = [(cell["scenario"], cell["protocol"], cell["seed"])
                for cell in report["cells"]]
        assert keys == sorted(keys)
        assert not report["partial"]

    def test_aggregates_merge_across_seeds(self):
        spec = SweepSpec(scenarios=("HT-wA",), protocols=("hades",),
                         seeds=(1, 2), scale=0.02, duration_ns=15_000.0)
        report = run_sweep(spec, workers=1, log=_quiet)
        group = report["aggregates"]["HT-wA/hades"]
        assert group["seeds"] == [1, 2]
        assert group["committed"] == sum(cell["committed"]
                                         for cell in report["cells"])
        merged_count = group["latency_hist"]["count"]
        assert merged_count == sum(cell["latency_hist"]["count"]
                                   for cell in report["cells"])

    def test_timing_stays_out_of_the_artifact(self, tmp_path):
        out = tmp_path / "sweep.json"
        report = run_sweep(TINY, workers=1, out=str(out), log=_quiet)
        assert "wall" not in out.read_text()
        assert "workers" not in report
        sidecar = json.loads((tmp_path / "sweep.timing.json").read_text())
        assert sidecar["workers"] == 1
        assert len(sidecar["cells"]) == len(report["cells"])


class TestFailureHandling:
    def test_error_cell_marks_report_partial(self, monkeypatch):
        real = worker_mod.run_cell

        def flaky(cell, **kwargs):
            if cell.protocol == "hades":
                raise RuntimeError("boom")
            return real(cell, **kwargs)

        monkeypatch.setattr(worker_mod, "run_cell", flaky)
        report = run_sweep(TINY, workers=1, log=_quiet)
        assert report["partial"]
        assert report["failed_cells"] == 2
        errors = [cell for cell in report["cells"] if "error" in cell]
        assert len(errors) == 2
        assert all("RuntimeError: boom" in cell["error"] for cell in errors)
        # The failed cells still carry their grid coordinates.
        assert {cell["protocol"] for cell in errors} == {"hades"}

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_pool_error_cells_flow_back(self, monkeypatch):
        real = worker_mod.run_cell

        def flaky(cell, **kwargs):
            if cell.scenario == "Smallbank":
                raise ValueError("injected")
            return real(cell, **kwargs)

        # Forked workers inherit the patched module.
        monkeypatch.setattr(worker_mod, "run_cell", flaky)
        report = run_sweep(TINY, workers=2, log=_quiet)
        assert report["partial"]
        assert report["failed_cells"] == 2
        ok = [cell for cell in report["cells"] if "error" not in cell]
        assert {cell["scenario"] for cell in ok} == {"HT-wA"}

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_dead_workers_mark_remaining_cells(self, monkeypatch):
        monkeypatch.setattr(worker_mod, "run_cell",
                            lambda cell, **kwargs: os._exit(1))
        report = run_sweep(TINY, workers=2, log=_quiet)
        assert report["partial"]
        assert report["failed_cells"] == len(report["cells"])
        assert all("error" in cell for cell in report["cells"])

    def test_interrupt_flushes_partial_report(self, tmp_path):
        out = tmp_path / "partial.json"
        seen = []

        def interrupt_after_first(cell, kind, payload):
            seen.append(payload)
            raise KeyboardInterrupt

        report = run_sweep(TINY, workers=1, out=str(out),
                           on_result=interrupt_after_first, log=_quiet)
        assert report["partial"]
        assert len(seen) == 1
        flushed = json.loads(out.read_text())
        assert flushed["partial"]
        # Every grid cell is accounted for: one ran, the rest are error
        # rows, so the partial artifact still describes the full grid.
        assert len(flushed["cells"]) == 4
        assert sum("error" not in cell for cell in flushed["cells"]) == 1

    def test_build_report_covers_unrun_cells(self):
        cells = TINY.expand()
        report = build_report(TINY, cells, [None] * len(cells))
        assert report["partial"]
        assert all(cell["error"] == "cell never ran"
                   for cell in report["cells"])


class TestSpansAndSlo:
    def test_per_cell_span_files_merge_via_report_glob(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        spec = SweepSpec(scenarios=("HT-wA",),
                         protocols=("baseline", "hades"), seeds=(3,),
                         scale=0.02, duration_ns=15_000.0)
        base = tmp_path / "spans.json"
        report = run_sweep(spec, workers=1, spans_out=str(base), log=_quiet)
        files = sorted(tmp_path.glob("spans.*.json"))
        assert len(files) == 2  # one per cell, no clobbering
        assert [cell["spans_file"] for cell in report["cells"]] == [
            str(path) for path in files]
        code = main(["report", str(tmp_path / "spans.*.json")])
        captured = capsys.readouterr().out
        assert code == 0
        assert "2 span dump(s)" in captured
        assert "abort taxonomy" in captured

    def test_slo_verdict_per_cell(self):
        spec = SweepSpec(scenarios=("HT-wA",), protocols=("hades",),
                         seeds=(3,), scale=0.02, duration_ns=15_000.0,
                         slo="p50<1ns")
        report = run_sweep(spec, workers=1, log=_quiet)
        assert report["cells"][0]["slo"]["passed"] is False


class TestCli:
    def test_sweep_command_prints_grid_and_aggregates(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        code = main(["sweep", "--scenarios", "HT-wA",
                     "--protocols", "baseline,hades", "--seeds", "5",
                     "--scale", "0.02", "--duration-us", "15",
                     "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "sweep grid" in captured
        assert "aggregates (merged across seeds)" in captured
        assert out.exists()
        assert (tmp_path / "sweep.timing.json").exists()

    def test_sweep_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "scenarios": ["HT-wA"], "protocols": ["hades"], "seeds": [5],
            "scale": 0.02, "duration_ns": 15_000.0}))
        code = main(["sweep", "--spec", str(spec_path), "--out", "-"])
        assert code == 0
        assert "1 cells" in capsys.readouterr().out

    def test_sweep_exit_nonzero_on_partial(self, tmp_path, monkeypatch,
                                           capsys):
        from repro.cli import main

        monkeypatch.setattr(
            worker_mod, "run_cell",
            lambda cell, **kwargs: (_ for _ in ()).throw(RuntimeError("x")))
        code = main(["sweep", "--scenarios", "HT-wA", "--protocols",
                     "hades", "--seeds", "5", "--duration-us", "15",
                     "--out", str(tmp_path / "s.json"), "--workers", "1"])
        assert code == 1
        assert "PARTIAL" in capsys.readouterr().out

    def test_sweep_override_flag(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        code = main(["sweep", "--scenarios", "HT-wA", "--protocols",
                     "hades", "--seeds", "5", "--scale", "0.02",
                     "--duration-us", "15", "--set",
                     "network.rt_latency_ns=500", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["spec"]["overrides"] == ["network.rt_latency_ns=500"]
        assert report["cells"][0]["overrides"] == [
            "network.rt_latency_ns=500"]


class TestWriteSweep:
    def test_stable_serialization(self, tmp_path):
        report = {"b": 1, "a": {"z": 2, "y": 3}}
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        write_sweep(report, str(first))
        write_sweep({"a": {"y": 3, "z": 2}, "b": 1}, str(second))
        assert first.read_bytes() == second.read_bytes()


class TestRateAxisSweep:
    """A rates-axis sweep end to end (serial)."""

    RATED = SweepSpec(scenarios=("HT-wA",), protocols=("hades",),
                      seeds=(7,), scale=0.02, duration_ns=15_000.0,
                      rates=(1e6, 4e6))

    def test_cells_carry_rate_and_load_summary(self):
        report = run_sweep(self.RATED, workers=1, log=_quiet)
        assert [cell["rate"] for cell in report["cells"]] == [1e6, 4e6]
        for cell in report["cells"]:
            assert cell["load"]["offered"] > 0
            assert cell["load"]["completed"] == cell["committed"]

    def test_aggregates_split_per_rate(self):
        report = run_sweep(self.RATED, workers=1, log=_quiet)
        keys = sorted(report["aggregates"])
        assert keys == ["HT-wA/hades/r1e+06", "HT-wA/hades/r4e+06"]
        for key in keys:
            assert "rate" in report["aggregates"][key]

    def test_rated_sweep_is_deterministic(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        run_sweep(self.RATED, workers=1, out=str(first), log=_quiet)
        run_sweep(self.RATED, workers=1, out=str(second), log=_quiet)
        assert first.read_bytes() == second.read_bytes()

    def test_closed_loop_cells_have_no_load_keys(self):
        report = run_sweep(TINY, workers=1, log=_quiet)
        for cell in report["cells"]:
            assert "rate" not in cell
            assert "load" not in cell
