"""Tests for the analysis helpers (Fig. 3 breakdown, Table IV, reports)."""

import pytest

from repro.analysis.bloom_analysis import (
    PAPER_TABLE_IV,
    analytic_false_positive_rate,
    empirical_false_positive_rate,
    table_iv_rows,
)
from repro.analysis.overheads import OVERHEAD_CATEGORIES, normalized_bar, overhead_breakdown
from repro.analysis.report import format_table, format_speedup_rows
from repro.sim.stats import RunMetrics


def fake_metrics(**category_ns):
    metrics = RunMetrics()
    for category, value in category_ns.items():
        metrics.overheads.add(category, value)
    metrics.overheads.finish_transaction()
    return metrics


class TestOverheadBreakdown:
    def test_shares_sum_to_one(self):
        metrics = fake_metrics(manage_sets=30.0, read_atomicity=20.0,
                               other=50.0)
        shares = overhead_breakdown(metrics)
        total = sum(shares[c] for c in OVERHEAD_CATEGORIES) + shares["other"]
        assert total == pytest.approx(1.0)
        assert shares["overhead_fraction"] == pytest.approx(0.5)

    def test_missing_categories_are_zero(self):
        shares = overhead_breakdown(fake_metrics(other=10.0))
        assert shares["rd_before_wr"] == 0.0
        assert shares["overhead_fraction"] == 0.0

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            overhead_breakdown(RunMetrics())

    def test_normalized_bar_reference(self):
        reference = fake_metrics(manage_sets=60.0, other=40.0)
        shorter = fake_metrics(manage_sets=30.0, other=20.0)
        bar = normalized_bar(shorter, reference=reference)
        assert bar["total"] == pytest.approx(0.5)
        self_bar = normalized_bar(reference)
        assert self_bar["total"] == pytest.approx(1.0)

    def test_normalized_bar_requires_transactions(self):
        with pytest.raises(ValueError):
            normalized_bar(RunMetrics())


class TestBloomAnalysis:
    def test_analytic_matches_paper_1kbit(self):
        for lines, paper in PAPER_TABLE_IV["1Kbit"].items():
            ours = analytic_false_positive_rate("1Kbit", lines)
            assert ours == pytest.approx(paper, rel=0.2)

    def test_analytic_split_is_much_smaller(self):
        for lines in (10, 20, 50, 100):
            plain = analytic_false_positive_rate("1Kbit", lines)
            split = analytic_false_positive_rate("512bit+4Kbit", lines)
            assert split < plain / 3

    def test_empirical_tracks_analytic(self):
        analytic = analytic_false_positive_rate("1Kbit", 50)
        empirical = empirical_false_positive_rate("1Kbit", 50, trials=60,
                                                  probes=400)
        assert empirical == pytest.approx(analytic, rel=0.5, abs=0.002)

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            analytic_false_positive_rate("2Kbit", 10)
        with pytest.raises(ValueError):
            empirical_false_positive_rate("1Kbit", 0)

    def test_table_rows_shape(self):
        rows = table_iv_rows(line_counts=(10, 100), empirical=False)
        assert len(rows) == 4
        assert {row["design"] for row in rows} == {"1Kbit", "512bit+4Kbit"}
        assert all("analytic" in row and "paper" in row for row in rows)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]],
                            title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
        with pytest.raises(ValueError):
            format_table([], [])

    def test_format_bars(self):
        from repro.analysis.report import format_bars
        text = format_bars({"baseline": 1.0, "hades": 2.0}, width=10,
                           title="Fig")
        lines = text.splitlines()
        assert lines[0] == "Fig"
        assert lines[2].count("#") == 10  # hades fills the width
        assert lines[1].count("#") == 5

    def test_format_bars_validation(self):
        from repro.analysis.report import format_bars
        with pytest.raises(ValueError):
            format_bars({})
        with pytest.raises(ValueError):
            format_bars({"a": 1.0}, width=2)
        with pytest.raises(ValueError):
            format_bars({"a": 0.0})

    def test_format_speedup_rows(self):
        text = format_speedup_rows(
            {"TPC-C": {"baseline": 1.0, "hades": 2.7, "hades-h": 2.3}},
            title="Fig 9")
        assert "TPC-C" in text and "2.70" in text
