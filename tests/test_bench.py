"""Tests for the wall-clock benchmark harness and ``repro bench``."""

import json

import pytest

from repro.bench import (
    SCENARIOS,
    BenchScenario,
    compare_to_baseline,
    merge_reports,
    run_bench,
    write_report,
)
from repro.cli import build_parser, main
from repro.config import ClusterConfig
from repro.workloads import MicroWorkload

#: A scenario small enough to run in milliseconds inside the tests.
TINY = BenchScenario(
    name="tiny",
    protocol="hades",
    make_workload=lambda: MicroWorkload(0.5, record_count=64),
    config=ClusterConfig(nodes=2),
    duration_ns=8_000.0,
    smoke_duration_ns=4_000.0,
    seed=5,
    llc_sets=256,
)


def _quiet(_message):
    pass


class TestHarness:
    def test_scenarios_are_pinned(self):
        names = [scenario.name for scenario in SCENARIOS]
        assert names == ["ycsb_b", "tpcc_mix", "micro_hot"]
        for scenario in SCENARIOS:
            assert scenario.smoke_duration_ns < scenario.duration_ns

    def test_run_bench_reports_events_and_determinism(self):
        report = run_bench(smoke=True, repeats=2, scenarios=[TINY],
                           log=_quiet)
        assert report["schema"] == 1
        assert report["benchmark"] == "hotpath"
        entry = report["modes"]["smoke"]["tiny"]
        assert entry["events"] > 0
        assert entry["events_per_sec"] > 0
        assert entry["sim_duration_ns"] == TINY.smoke_duration_ns
        assert entry["repeats"] == 2
        assert entry["deterministic"] is True

    def test_run_bench_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_bench(repeats=0, scenarios=[TINY], log=_quiet)

    def test_full_and_smoke_modes_merge_into_one_report(self):
        full = run_bench(smoke=False, repeats=1, scenarios=[TINY],
                         log=_quiet)
        smoke = run_bench(smoke=True, repeats=1, scenarios=[TINY],
                          log=_quiet)
        merged = merge_reports(full, smoke)
        assert set(merged["modes"]) == {"full", "smoke"}

    def test_write_report_round_trips(self, tmp_path):
        report = run_bench(smoke=True, repeats=1, scenarios=[TINY],
                           log=_quiet)
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == report


def _report(events_per_sec, mode="smoke", name="tiny",
            deterministic=True, abort_rate=None, retry_rate=None):
    entry = {"events_per_sec": events_per_sec,
             "deterministic": deterministic}
    if abort_rate is not None:
        entry["abort_rate"] = abort_rate
    if retry_rate is not None:
        entry["retry_rate"] = retry_rate
    return {
        "schema": 1,
        "benchmark": "hotpath",
        "modes": {mode: {name: entry}},
    }


class TestBaselineGate:
    def test_passes_within_limit(self):
        assert compare_to_baseline(_report(80.0), _report(100.0),
                                   max_regression=0.30) == []

    def test_fails_beyond_limit(self):
        failures = compare_to_baseline(_report(60.0), _report(100.0),
                                       max_regression=0.30)
        assert len(failures) == 1
        assert "smoke/tiny" in failures[0]

    def test_improvement_always_passes(self):
        assert compare_to_baseline(_report(300.0), _report(100.0)) == []

    def test_scenario_missing_from_baseline_skipped(self):
        baseline = _report(100.0, name="other")
        assert compare_to_baseline(_report(1.0), baseline) == []

    def test_modes_compared_independently(self):
        current = _report(60.0, mode="smoke")
        baseline = _report(100.0, mode="full")
        assert compare_to_baseline(current, baseline) == []

    def test_non_deterministic_run_fails(self):
        failures = compare_to_baseline(_report(100.0, deterministic=False),
                                       _report(100.0))
        assert failures and "determinism" in failures[0]


class TestZeroWallClock:
    def test_run_once_fails_loudly_on_zero_wall_clock(self, monkeypatch):
        """A broken (frozen) timer must raise, not report 0 events/s:
        a zero rate sails under every ratio-based regression gate."""
        import repro.bench.harness as harness

        monkeypatch.setattr(harness.time, "perf_counter", lambda: 1234.5)
        with pytest.raises(RuntimeError, match="non-positive wall clock"):
            TINY.run_once(smoke=True)


class TestBehavioralDriftGate:
    """abort_rate / retry_rate are behavioral fingerprints: with pinned
    seeds they only move when protocol behavior changes, so the gate
    flags drift independently of wall-clock throughput."""

    def test_run_once_records_rates(self):
        report = run_bench(smoke=True, repeats=1, scenarios=[TINY],
                           log=_quiet)
        entry = report["modes"]["smoke"]["tiny"]
        assert 0.0 <= entry["abort_rate"] <= 1.0
        assert 0.0 <= entry["retry_rate"] <= 1.0

    def test_identical_rates_pass(self):
        current = _report(100.0, abort_rate=0.64, retry_rate=0.47)
        baseline = _report(100.0, abort_rate=0.64, retry_rate=0.47)
        assert compare_to_baseline(current, baseline) == []

    def test_abort_rate_drift_fails(self):
        current = _report(100.0, abort_rate=0.70, retry_rate=0.47)
        baseline = _report(100.0, abort_rate=0.64, retry_rate=0.47)
        failures = compare_to_baseline(current, baseline)
        assert len(failures) == 1
        assert "abort_rate" in failures[0]
        assert "behavioral change" in failures[0]

    def test_retry_rate_drift_fails(self):
        current = _report(100.0, abort_rate=0.64, retry_rate=0.40)
        baseline = _report(100.0, abort_rate=0.64, retry_rate=0.47)
        failures = compare_to_baseline(current, baseline)
        assert failures and "retry_rate" in failures[0]

    def test_drift_within_tolerance_passes(self):
        current = _report(100.0, abort_rate=0.65, retry_rate=0.46)
        baseline = _report(100.0, abort_rate=0.64, retry_rate=0.47)
        assert compare_to_baseline(current, baseline) == []

    def test_rate_drift_limit_is_configurable(self):
        current = _report(100.0, abort_rate=0.65)
        baseline = _report(100.0, abort_rate=0.64)
        failures = compare_to_baseline(current, baseline,
                                       max_rate_drift=0.005)
        assert failures and "abort_rate" in failures[0]

    def test_old_baseline_without_rates_skipped(self):
        # Baselines written before the rates existed must not fail the
        # gate — the comparison only runs when both sides carry the key.
        current = _report(100.0, abort_rate=0.9, retry_rate=0.9)
        baseline = _report(100.0)
        assert compare_to_baseline(current, baseline) == []

    def test_committed_baseline_carries_rates(self):
        with open("BENCH_hotpath.json") as fh:
            baseline = json.load(fh)
        for mode in ("full", "smoke"):
            for entry in baseline["modes"][mode].values():
                assert "abort_rate" in entry
                assert "retry_rate" in entry


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.smoke is False
        assert args.repeats == 2
        assert args.out == "BENCH_hotpath.json"
        assert args.baseline is None
        assert args.max_regression == 0.30

    def test_bench_writes_report_and_gates(self, tmp_path, monkeypatch):
        from repro.bench import harness

        monkeypatch.setattr(harness, "SCENARIOS", [TINY])
        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert "tiny" in report["modes"]["smoke"]

        # Wall clock is machine- and load-dependent, so the gate's two
        # directions are pinned with scaled baselines: a far slower
        # baseline always passes, a far faster one always fails.
        slow, fast = dict(report), dict(report)
        slow["modes"] = {"smoke": {
            name: {**entry, "events_per_sec": entry["events_per_sec"] / 1000}
            for name, entry in report["modes"]["smoke"].items()}}
        fast["modes"] = {"smoke": {
            name: {**entry, "events_per_sec": entry["events_per_sec"] * 1000}
            for name, entry in report["modes"]["smoke"].items()}}
        slow_path, fast_path = tmp_path / "slow.json", tmp_path / "fast.json"
        slow_path.write_text(json.dumps(slow))
        fast_path.write_text(json.dumps(fast))
        assert main(["bench", "--smoke", "--repeats", "1", "--out", "-",
                     "--baseline", str(slow_path)]) == 0
        assert main(["bench", "--smoke", "--repeats", "1", "--out", "-",
                     "--baseline", str(fast_path)]) == 1


def _cell(scenario="HT-wA", protocol="hades", seed=1, abort_rate=0.25,
          tps=1000.0, events=5000, **extra):
    cell = {"scenario": scenario, "protocol": protocol, "seed": seed,
            "shape": "default", "scale": 0.05, "duration_ns": 15_000.0,
            "overrides": [], "abort_rate": abort_rate,
            "throughput_tps": tps, "events": events}
    cell.update(extra)
    return cell


class TestCompareTrajectories:
    def test_identical_sweeps_pass(self):
        from repro.bench import compare_trajectories

        report = {"cells": [_cell(), _cell(protocol="baseline", tps=400.0)]}
        assert compare_trajectories(report, report) == []

    def test_abort_rate_drift_fails(self):
        from repro.bench import compare_trajectories

        baseline = {"cells": [_cell(abort_rate=0.25)]}
        report = {"cells": [_cell(abort_rate=0.30)]}
        failures = compare_trajectories(report, baseline)
        assert len(failures) == 1
        assert "abort_rate" in failures[0]
        assert "behavioral" in failures[0]

    def test_throughput_drop_fails(self):
        from repro.bench import compare_trajectories

        baseline = {"cells": [_cell(tps=1000.0)]}
        report = {"cells": [_cell(tps=500.0)]}
        failures = compare_trajectories(report, baseline)
        assert len(failures) == 1
        assert "simulated throughput" in failures[0]

    def test_new_cells_skip_the_gate(self):
        from repro.bench import compare_trajectories

        baseline = {"cells": [_cell(seed=1)]}
        report = {"cells": [_cell(seed=1), _cell(seed=2, abort_rate=0.9)]}
        assert compare_trajectories(report, baseline) == []

    def test_error_cell_fails(self):
        from repro.bench import compare_trajectories

        baseline = {"cells": [_cell()]}
        report = {"cells": [dict(_cell(), error="RuntimeError: boom")]}
        failures = compare_trajectories(report, baseline)
        assert len(failures) == 1
        assert "cell failed" in failures[0]

    def test_wall_clock_gate_uses_timing_sidecars(self):
        from repro.bench import compare_trajectories

        cells = {"HT-wA.hades.s1": 1.0}
        baseline = {"cells": [_cell(events=10_000)]}
        report = {"cells": [_cell(events=10_000)]}
        slow = {"workers": 1, "cells": {"HT-wA.hades.s1": 2.0}}
        fast = {"workers": 1, "cells": cells}
        failures = compare_trajectories(report, baseline, timing=slow,
                                        baseline_timing=fast)
        assert len(failures) == 1
        assert "events/s" in failures[0]

    def test_wall_clock_gate_skipped_across_worker_counts(self):
        from repro.bench import compare_trajectories

        baseline = {"cells": [_cell(events=10_000)]}
        report = {"cells": [_cell(events=10_000)]}
        slow = {"workers": 4, "cells": {"HT-wA.hades.s1": 9.0}}
        fast = {"workers": 1, "cells": {"HT-wA.hades.s1": 1.0}}
        assert compare_trajectories(report, baseline, timing=slow,
                                    baseline_timing=fast) == []


class TestBenchTrajectoryCli:
    def test_trajectory_gate_passes_against_itself(self, tmp_path, capsys):
        report = {"cells": [_cell()]}
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(report))
        code = main(["bench", "--trajectory", str(path),
                     "--baseline", str(path)])
        assert code == 0
        assert "trajectory gate passed" in capsys.readouterr().out

    def test_trajectory_gate_fails_on_drift(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        base = tmp_path / "base.json"
        current.write_text(json.dumps({"cells": [_cell(abort_rate=0.5)]}))
        base.write_text(json.dumps({"cells": [_cell(abort_rate=0.1)]}))
        code = main(["bench", "--trajectory", str(current),
                     "--baseline", str(base)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_trajectory_requires_baseline(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            main(["bench", "--trajectory", str(path)])
