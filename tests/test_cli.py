"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "hades"
        assert args.workload == "HT-wA"
        assert args.shape == "default"

    def test_run_custom(self):
        args = build_parser().parse_args(
            ["run", "--protocol", "baseline", "--workload", "TPC-C",
             "--scale", "0.5", "--shape", "scale_n10"])
        assert args.protocol == "baseline"
        assert args.workload == "TPC-C"
        assert args.scale == 0.5
        assert args.shape == "scale_n10"

    def test_invalid_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "spanner"])

    def test_figures_names(self):
        for name in FIGURES:
            args = build_parser().parse_args(["figures", name])
            assert args.name == name
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_cost_prints_paper_numbers(self, capsys):
        assert main(["cost", "--cores", "5", "--multiplexing", "2",
                     "--remote-nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "core BF pairs" in out
        assert "10" in out  # 10 pairs

    def test_run_small_experiment(self, capsys):
        code = main(["run", "--protocol", "hades", "--workload", "TATP",
                     "--scale", "0.01", "--duration-us", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput (txn/s)" in out
        assert "TATP" in out

    def test_compare_small(self, capsys):
        code = main(["compare", "--workload", "Smallbank", "--scale", "0.01",
                     "--duration-us", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "hades" in out

    def test_run_with_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro.obs import validate_jsonl

        jsonl = str(tmp_path / "t.jsonl")
        chrome = str(tmp_path / "t.json")
        csv = str(tmp_path / "m.csv")
        code = main(["run", "--protocol", "hades", "--workload", "ycsb",
                     "--scale", "0.05", "--duration-us", "60",
                     "--trace", jsonl, "--metrics", csv])
        assert code == 0
        assert validate_jsonl(jsonl) > 0
        header = open(csv).readline()
        assert header.startswith("t_ns,committed")
        code = main(["run", "--protocol", "hades", "--workload", "ycsb",
                     "--scale", "0.05", "--duration-us", "60",
                     "--trace", chrome])
        assert code == 0
        doc = json.load(open(chrome))
        assert doc["traceEvents"]
        capsys.readouterr()

    def test_run_histogram_latency_flag(self, capsys):
        code = main(["run", "--protocol", "baseline", "--workload", "ycsb",
                     "--scale", "0.05", "--duration-us", "60",
                     "--histogram-latency"])
        assert code == 0
        assert "throughput (txn/s)" in capsys.readouterr().out

    def test_workload_aliases_accepted(self):
        from repro.workloads import make_workload

        assert make_workload("ycsb", scale=0.01).name == "HT-wA"
        assert make_workload("YCSB-B", scale=0.01).name == "HT-wB"
        assert make_workload("tpcc", scale=0.01).name == "TPC-C"

    def test_figures_sec06(self, capsys):
        assert main(["figures", "sec06"]) == 0
        out = capsys.readouterr().out
        assert "N=5,C=5,m=2,D=4" in out


class TestSpansAndSlo:
    def test_run_spans_prints_lifecycle_tables(self, capsys):
        code = main(["run", "--protocol", "hades", "--workload", "ycsb",
                     "--scale", "0.05", "--duration-us", "100", "--seed", "5",
                     "--spans"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lifecycle spans" in out
        assert "abort taxonomy" in out
        assert "execute" in out

    def test_spans_out_writes_validatable_json(self, capsys, tmp_path):
        import json

        from repro.obs import SpanRecorder, validate_spans

        path = str(tmp_path / "spans.json")
        code = main(["run", "--protocol", "hades", "--workload", "ycsb",
                     "--scale", "0.05", "--duration-us", "100", "--seed", "5",
                     "--spans-out", path])
        assert code == 0
        dump = json.load(open(path))
        validate_spans(dump)
        recorder = SpanRecorder.from_dict(dump)
        assert recorder.protocol == "hades"
        assert recorder.committed > 0
        assert recorder.unknown_aborts() == 0
        capsys.readouterr()

    def test_slo_pass_and_fail_exit_codes(self, capsys):
        common = ["run", "--protocol", "hades", "--workload", "ycsb",
                  "--scale", "0.05", "--duration-us", "60", "--seed", "7"]
        assert main(common + ["--slo", "p99<100ms"]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(common + ["--slo", "p50<1ns"]) == 2
        assert "FAIL" in capsys.readouterr().out

    def test_report_live_mode(self, capsys):
        code = main(["report", "--workload", "ycsb", "--scale", "0.05",
                     "--duration-us", "80", "--seed", "5",
                     "--protocols", "baseline,hades"])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-phase latency breakdown" in out
        assert "baseline p99" in out and "hades p99" in out
        assert "abort taxonomy" in out
        assert "attempts and retries" in out

    def test_report_merges_span_dumps(self, capsys, tmp_path):
        paths = []
        for protocol in ("baseline", "hades"):
            path = str(tmp_path / f"{protocol}.json")
            main(["run", "--protocol", protocol, "--workload", "ycsb",
                  "--scale", "0.05", "--duration-us", "60", "--seed", "5",
                  "--spans-out", path])
            paths.append(path)
        capsys.readouterr()
        assert main(["report"] + paths) == 0
        out = capsys.readouterr().out
        assert "2 span dump(s)" in out
        assert "baseline p50" in out and "hades p50" in out

    def test_report_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit, match="unknown protocol"):
            main(["report", "--protocols", "spanner"])


class TestLoadCli:
    def test_loadtest_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.protocol == "hades"
        assert args.workload == "HT-wB"
        assert args.slo == "p99<20us"
        assert args.scale == 0.05
        assert not args.smoke

    def test_run_accepts_warmup_and_load(self):
        args = build_parser().parse_args(
            ["run", "--warmup-ns", "50000", "--load", "rate=2e6"])
        assert args.warmup_ns == 50000.0
        assert args.load == "rate=2e6"

    def test_sweep_accepts_rates(self):
        args = build_parser().parse_args(["sweep", "--rates", "1e6,2e6"])
        assert args.rates == "1e6,2e6"

    def test_run_with_load_prints_summary(self, capsys):
        code = main(["run", "--workload", "HT-wB", "--scale", "0.05",
                     "--duration-us", "60", "--warmup-ns", "20000",
                     "--load", "rate=2e6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop load" in out
        assert "sojourn p99" in out

    def test_loadtest_smoke_writes_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "LT.json"
        code = main(["loadtest", "--duration-us", "60",
                     "--warmup-ns", "20000", "--iters", "2",
                     "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "max sustainable" in out
        assert "probe ladder" in out
        import json

        report = json.loads(out_path.read_text())
        assert report["kind"] == "loadtest"
        assert report["max_sustainable_tps"] >= 0
