"""Tests for the architecture configuration (Table III)."""

import pytest

from repro.config import (
    CLUSTER_SHAPES,
    BloomParams,
    CacheParams,
    ClusterConfig,
    CoreParams,
    NetworkParams,
    make_cluster_config,
)


def test_default_cluster_is_paper_default():
    config = ClusterConfig()
    assert config.nodes == 5
    assert config.cores_per_node == 5
    assert config.multiplexing == 2
    assert config.total_cores == 25
    assert config.transactions_per_node == 10


def test_core_cycle_time():
    core = CoreParams()
    assert core.cycle_ns == pytest.approx(0.5)  # 2 GHz
    assert core.cycles_to_ns(40) == pytest.approx(20.0)


def test_network_derived_values():
    net = NetworkParams()
    assert net.one_way_latency_ns == pytest.approx(1000.0)
    assert net.bytes_per_ns == pytest.approx(25.0)  # 200 Gb/s
    assert net.transfer_ns(2500) == pytest.approx(100.0)
    with pytest.raises(ValueError):
        net.transfer_ns(-1)


def test_bloom_pair_storage_matches_paper():
    bloom = BloomParams()
    assert bloom.core_pair_bytes * 10 == pytest.approx(7.0 * 1024, rel=0.02)
    assert bloom.nic_pair_bytes == 256


def test_llc_sets_geometry():
    cache = CacheParams()
    # 4 MB/core x 5 cores, 16 ways, 64 B lines -> 20480 sets.
    assert cache.llc_sets(5) == 20 * 1024 * 1024 // 64 // 16


def test_local_line_access_is_hit_dram_mix():
    config = ClusterConfig()
    llc_ns = 40 * 0.5
    dram_ns = llc_ns + 100.0
    expected = 0.9 * llc_ns + 0.1 * dram_ns
    assert config.local_line_access_ns() == pytest.approx(expected)


def test_copy_cost():
    config = ClusterConfig()
    # 64 bytes at 2 B/cycle = 32 cycles = 16 ns.
    assert config.copy_ns(64) == pytest.approx(16.0)


def test_invalid_cluster_rejected():
    with pytest.raises(ValueError):
        ClusterConfig(nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(cores_per_node=0)
    with pytest.raises(ValueError):
        ClusterConfig(multiplexing=0)


def test_replace_helpers_do_not_mutate_original():
    config = ClusterConfig()
    faster = config.with_network(rt_latency_ns=1000.0)
    assert faster.network.rt_latency_ns == 1000.0
    assert config.network.rt_latency_ns == 2000.0
    cheaper = config.with_cost(read_set_insert_cycles=1.0)
    assert cheaper.cost.read_set_insert_cycles == 1.0
    assert config.cost.read_set_insert_cycles != 1.0
    bigger = config.with_bloom(nic_read_bits=2048)
    assert bigger.bloom.nic_read_bits == 2048


def test_cluster_shapes_cover_paper_experiments():
    assert CLUSTER_SHAPES["default"] == (5, 5)
    assert CLUSTER_SHAPES["scale_n10"] == (10, 5)
    assert CLUSTER_SHAPES["scale_c10"] == (5, 10)
    assert CLUSTER_SHAPES["scale_200"] == (8, 25)
    config = make_cluster_config("scale_200")
    assert config.total_cores == 200


def test_unknown_shape_rejected():
    with pytest.raises(KeyError):
        make_cluster_config("mega")
