"""Documentation consistency: the docs reference things that exist."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/PROTOCOL.md", "docs/SIMULATOR.md"):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500, f"{name} looks stubby"


def test_design_md_experiment_benches_exist():
    """Every bench target named in DESIGN.md's experiment index exists."""
    text = (ROOT / "DESIGN.md").read_text()
    targets = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
    assert len(targets) >= 12
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_design_md_modules_exist():
    """Every module name in DESIGN.md's inventory exists somewhere in src."""
    text = (ROOT / "DESIGN.md").read_text()
    existing = {path.name
                for folder in ("src", "tests", "benchmarks", "examples")
                for path in (ROOT / folder).rglob("*.py")}
    for module in re.findall(r"(\w+\.py)\b", text):
        if module in ("conflict.py", "livelock.py"):
            continue  # explicitly documented as dissolved into other homes
        assert module in existing, module


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for script in re.findall(r"examples/(\w+\.py)", text):
        assert (ROOT / "examples" / script).exists(), script


def test_every_paper_figure_has_a_bench():
    """One bench file per evaluation figure/table (DESIGN deliverable d)."""
    bench_dir = ROOT / "benchmarks"
    expected = ["fig03", "fig09", "fig10", "fig11", "fig12a", "fig12b",
                "fig13", "fig14", "fig15", "table04", "sec06",
                "char_llc", "char_false"]
    names = "\n".join(path.name for path in bench_dir.glob("test_*.py"))
    for token in expected:
        assert token in names, f"no bench for {token}"


def test_every_public_module_has_a_docstring():
    import importlib

    modules = [
        "repro", "repro.config", "repro.runner", "repro.experiments",
        "repro.trace", "repro.cli",
        "repro.sim.engine", "repro.sim.events", "repro.sim.random",
        "repro.sim.stats",
        "repro.hardware.bloom", "repro.hardware.cache",
        "repro.hardware.directory", "repro.hardware.nic",
        "repro.hardware.dram", "repro.hardware.cost",
        "repro.hardware.energy", "repro.hardware.crc",
        "repro.net.fabric", "repro.net.messages",
        "repro.cluster.address", "repro.cluster.record",
        "repro.cluster.memory", "repro.cluster.node",
        "repro.cluster.cluster",
        "repro.core.api", "repro.core.base", "repro.core.baseline",
        "repro.core.hades", "repro.core.hades_hybrid",
        "repro.core.replication", "repro.core.txn",
        "repro.kvs.base", "repro.kvs.hashtable", "repro.kvs.btree",
        "repro.kvs.bplustree", "repro.kvs.ordered_map",
        "repro.workloads.base", "repro.workloads.micro",
        "repro.workloads.ycsb", "repro.workloads.tpcc",
        "repro.workloads.tatp", "repro.workloads.smallbank",
        "repro.workloads.mixes",
        "repro.analysis.overheads", "repro.analysis.bloom_analysis",
        "repro.analysis.report",
        "repro.verify.serializability",
    ]
    for name in modules:
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__) > 40, name
