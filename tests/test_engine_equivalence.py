"""Full-run equivalence of the wheel engine vs. the reference heap.

The property test in ``tests/sim/test_engine.py`` covers the dispatch
contract on synthetic schedules; this module pins the contract end to
end: a complete traced experiment — protocol, fabric, workload tapes,
telemetry and all — must produce a byte-identical trace artifact (the
same file ``repro run --trace out.jsonl`` writes) under both engines,
selected exactly the way users select them: the ``REPRO_ENGINE``
environment knob read by :func:`repro.sim.create_engine`.
"""

from repro.config import ClusterConfig
from repro.obs import EventTracer
from repro.runner import run_experiment
from repro.workloads import YcsbWorkload


def _traced_run(tmp_path, tag):
    tracer = EventTracer()
    result = run_experiment(
        "hades",
        YcsbWorkload(store="ht", variant="b", record_count=500),
        config=ClusterConfig(nodes=3),
        duration_ns=30_000.0,
        seed=11,
        llc_sets=1024,
        tracer=tracer,
    )
    path = tmp_path / f"{tag}.jsonl"
    tracer.save_jsonl(str(path))
    return path.read_bytes(), {
        "events_processed": result.events_processed,
        "committed": result.metrics.meter.committed,
        "aborted": result.metrics.meter.aborted,
        "counters": result.metrics.counters.as_dict(),
    }


def test_trace_artifact_identical_across_engines(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    wheel_bytes, wheel_summary = _traced_run(tmp_path, "wheel")
    monkeypatch.setenv("REPRO_ENGINE", "heap")
    heap_bytes, heap_summary = _traced_run(tmp_path, "heap")
    assert wheel_summary == heap_summary
    assert wheel_bytes == heap_bytes
    assert len(wheel_bytes) > 1000  # a real trace, not an empty header
