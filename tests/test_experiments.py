"""Fast shape-tests of the experiment harness.

These run each experiment at very small budgets and assert structural
properties (row shapes, normalization anchors) — the full shape
assertions against paper numbers live in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    PROTOCOL_ORDER,
    QUICK,
    ExperimentSettings,
    char_false_positives,
    char_llc_evictions,
    fig03_overheads,
    fig09_throughput,
    fig10_latency,
    fig12b_locality,
    sec06_hardware_cost,
    table04_bloom_fp,
)

TINY = ExperimentSettings(scale=0.01, duration_ns=120_000.0,
                          suite=("HT-wA", "TATP"), llc_sets=256)


def test_settings_with_override():
    assert QUICK.with_(seed=9).seed == 9
    assert QUICK.seed != 9


def test_fig03_rows_shape():
    rows = fig03_overheads(TINY)
    assert [row["workload"] for row in rows] == ["100%WR", "50%WR-50%RD",
                                                 "100%RD"]
    for row in rows:
        assert 0.0 < row["overhead_fraction"] < 1.0
        assert row["other"] > 0.0


def test_fig09_rows_have_geomean_and_unit_baseline():
    rows = fig09_throughput(TINY)
    assert rows[-1]["workload"] == "geomean"
    for row in rows:
        assert row["baseline"] == pytest.approx(1.0) or \
            row["workload"] == "geomean"
        for protocol in PROTOCOL_ORDER:
            assert row[protocol] > 0


def test_fig10_rows_phase_shares():
    rows = fig10_latency(TINY)
    assert len(rows) == len(TINY.suite) * len(PROTOCOL_ORDER)
    for row in rows:
        shares = (row["execution_share"] + row["validation_share"]
                  + row["commit_share"])
        assert shares == pytest.approx(1.0, abs=1e-6)
        if row["protocol"] != "baseline":
            # HADES variants have no Commit phase (Fig. 10).
            assert row["commit_share"] == 0.0
        if row["protocol"] == "baseline":
            assert row["normalized"] == pytest.approx(1.0)


def test_fig12b_reference_anchor():
    rows = fig12b_locality(TINY, local_fractions=(0.2, 0.8))
    assert rows[0]["local_fraction"] == 0.2
    assert rows[0]["baseline"] == pytest.approx(1.0)
    assert len(rows) == 2


def test_table04_rows():
    rows = table04_bloom_fp(trials=20, probes=100)
    assert len(rows) == 8
    for row in rows:
        assert row["empirical"] >= 0.0
        assert row["analytic"] >= 0.0


def test_sec06_matches_paper():
    rows = sec06_hardware_cost()
    assert rows[0]["core_bf_kb"] == pytest.approx(7.0, abs=0.2)
    assert rows[0]["nic_total_kb"] == pytest.approx(11.0, abs=0.2)
    assert rows[1]["wrtx_id_bits"] == 5


def test_char_llc_evictions_reports_fraction():
    result = char_llc_evictions(TINY, llc_sets=16)
    assert result["attempts"] > 0
    assert 0.0 <= result["eviction_squash_fraction"] <= 1.0


def test_char_false_positives_small():
    rows = char_false_positives(TINY)
    for row in rows:
        assert row["conflict_checks"] > 0
        assert 0.0 <= row["fp_fraction"] < 0.05
