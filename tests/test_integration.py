"""Cross-module integration tests."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig, NetworkParams
from repro.core import PROTOCOLS, read, write
from repro.net.fabric import Fabric
from repro.net.messages import Message
from repro.sim import Engine
from repro.sim.random import DeterministicRandom


def final_state(protocol_name, seed=5):
    """Run a fixed conflict-free schedule; return {record: value}."""
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(nodes=3, cores_per_node=2),
                      llc_sets=256)
    protocol = PROTOCOLS[protocol_name](cluster, seed=seed)
    records = list(range(1, 13))
    for record_id in records:
        cluster.allocate_record(record_id, 128)

    def client(client_index):
        # Each client owns a disjoint record slice: no conflicts, so
        # every protocol must produce the same final state.
        mine = records[client_index * 3:(client_index + 1) * 3]
        rng = DeterministicRandom(seed + client_index)
        for round_number in range(4):
            spec = []
            for record_id in mine:
                if rng.random() < 0.5:
                    spec.append(write(record_id,
                                      value=(client_index, round_number,
                                             record_id)))
                else:
                    spec.append(read(record_id))
            yield from protocol.execute(client_index % 3,
                                        client_index % 4, spec)

    for client_index in range(4):
        engine.process(client(client_index))
    engine.run()

    state = {}
    for record_id in records:
        descriptor = cluster.record(record_id)
        node = cluster.node(descriptor.home_node)
        values = {v for v in node.memory.read_lines(descriptor.lines).values()
                  if v is not None}
        state[record_id] = values
    return state, protocol.metrics


class TestCrossProtocolEquivalence:
    def test_conflict_free_final_states_agree(self):
        states = {}
        for name in sorted(PROTOCOLS):
            state, metrics = final_state(name)
            states[name] = state
            assert metrics.meter.aborted == 0, f"{name} aborted needlessly"
        assert states["baseline"] == states["hades"] == states["hades-h"]

    def test_all_protocols_commit_the_same_count(self):
        counts = set()
        for name in sorted(PROTOCOLS):
            _state, metrics = final_state(name)
            counts.add(metrics.meter.committed)
        assert len(counts) == 1


class TestFabricOrdering:
    def test_fifo_per_src_dst_pair(self):
        """Messages between one (src, dst) pair always arrive in send
        order — the protocol's cleanup correctness depends on it."""
        engine = Engine()
        fabric = Fabric(engine, NetworkParams())
        arrivals = []
        fabric.register(1, lambda src, msg: arrivals.append(msg.owner[1]))
        rng = DeterministicRandom(3)

        class Sized(Message):
            def __init__(self, owner, size):
                super().__init__(owner)
                self._size = size

            def size_bytes(self):
                return self._size

        def sender():
            for index in range(50):
                fabric.send(0, 1, Sized((0, index), rng.randint(64, 20000)))
                yield float(rng.randint(0, 300))

        engine.process(sender())
        engine.run()
        assert arrivals == sorted(arrivals)
        assert len(arrivals) == 50

    def test_interleaved_sources_each_stay_ordered(self):
        engine = Engine()
        fabric = Fabric(engine, NetworkParams())
        arrivals = []
        fabric.register(2, lambda src, msg: arrivals.append((src,
                                                             msg.owner[1])))
        for index in range(20):
            fabric.send(0, 2, Message((0, index)))
            fabric.send(1, 2, Message((1, index)))
        engine.run()
        for src in (0, 1):
            sequence = [seq for s, seq in arrivals if s == src]
            assert sequence == sorted(sequence)


class TestScalabilitySmoke:
    @pytest.mark.parametrize("shape,expected_cores", [
        ("scale_n10", 50), ("scale_c10", 50), ("scale_200", 200)])
    def test_larger_clusters_run(self, shape, expected_cores):
        from repro.config import make_cluster_config
        from repro.runner import run_experiment
        from repro.workloads import MicroWorkload

        config = make_cluster_config(shape)
        assert config.total_cores == expected_cores
        result = run_experiment(
            "hades", MicroWorkload(0.5, record_count=5000),
            config=config, duration_ns=60_000.0, seed=3, llc_sets=512)
        assert result.metrics.meter.committed > 0
