"""In-process run isolation: run order must not affect results.

Pins the contract of :mod:`repro.isolation`: one process executing runs
back to back (a sweep worker, a figure suite, a REPL) produces the
exact results a fresh process would — warm caches may change wall
clock, never simulated output, and the per-run Bloom energy deltas are
independent of what ran before.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.isolation import process_state_report, reset_process_caches
from repro.runner import run_experiment
from repro.workloads import make_workload

SRC = str(Path(__file__).resolve().parents[1] / "src")


def _fingerprint(result):
    """Everything a run reports that must be order-independent."""
    summary = result.metrics.summary()
    return {
        "committed": summary["committed"],
        "aborted": summary["aborted"],
        "mean_latency_ns": summary["mean_latency_ns"],
        "p95_latency_ns": summary["p95_latency_ns"],
        "counters": result.metrics.counters.as_dict(),
        "bloom_read_ops": result.bloom_read_ops,
        "bloom_write_ops": result.bloom_write_ops,
    }


def _run_a():
    return run_experiment("hades", make_workload("TATP", scale=0.02),
                          duration_ns=20_000.0, seed=11, llc_sets=512)


def _run_b():
    return run_experiment("hades", make_workload("HT-wA", scale=0.02),
                          duration_ns=20_000.0, seed=23, llc_sets=512)


_SUBPROCESS_B = """
import json
from repro.runner import run_experiment
from repro.workloads import make_workload

result = run_experiment("hades", make_workload("HT-wA", scale=0.02),
                        duration_ns=20_000.0, seed=23, llc_sets=512)
summary = result.metrics.summary()
print(json.dumps({
    "committed": summary["committed"],
    "aborted": summary["aborted"],
    "mean_latency_ns": summary["mean_latency_ns"],
    "p95_latency_ns": summary["p95_latency_ns"],
    "counters": result.metrics.counters.as_dict(),
    "bloom_read_ops": result.bloom_read_ops,
    "bloom_write_ops": result.bloom_write_ops,
}))
"""


def test_run_a_then_b_matches_fresh_process_b():
    """The regression test for cross-run state leaks: B's results after
    an unrelated run A are bit-identical to B in a fresh process."""
    _run_a()
    warm = _fingerprint(_run_b())
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_B],
                          capture_output=True, text=True,
                          env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    fresh = json.loads(proc.stdout)
    assert warm == fresh


def test_run_after_reset_matches_warm_run():
    """The mask caches are pure value caches: clearing them between runs
    changes nothing (which is why the sweep workers keep them warm)."""
    _run_a()
    warm = _fingerprint(_run_b())
    reset_process_caches()
    cold = _fingerprint(_run_b())
    assert warm == cold


def test_bloom_deltas_are_order_independent():
    """The energy counters grow process-wide, but each result reports
    its own accesses as deltas — the same run sees the same ops whether
    or not another run preceded it."""
    reset_process_caches()
    alone = _fingerprint(_run_b())
    _run_a()
    after_a = _fingerprint(_run_b())
    assert after_a["bloom_read_ops"] == alone["bloom_read_ops"]
    assert after_a["bloom_write_ops"] == alone["bloom_write_ops"]
    assert alone["bloom_read_ops"] > 0


def test_process_state_report_inventory():
    reset_process_caches()
    report = process_state_report()
    assert report["bloom_total_read_ops"] == 0
    assert report["bloom_total_write_ops"] == 0
    assert report["hash_family_masks"] == {}
    _run_b()
    report = process_state_report()
    assert report["bloom_total_read_ops"] > 0
    assert report["hash_family_masks"]
    reset_process_caches()
    assert process_state_report()["hash_family_masks"] == {}


def test_tape_era_caches_are_audited_and_resettable():
    """The request-tape era's pure value caches — zipfian scramble memos
    and WrBF2 position memos — must appear in the audit inventory, fill
    during a run, and reset to import-time state on demand."""
    reset_process_caches()
    report = process_state_report()
    assert report["zipfian_scramble_keys"] == {}
    assert report["split_index_positions"] == {}
    _run_b()
    report = process_state_report()
    assert report["zipfian_scramble_keys"], "zipf scramble memo never filled"
    assert report["split_index_positions"], "WrBF2 position memo never filled"
    reset_process_caches()
    report = process_state_report()
    assert report["zipfian_scramble_keys"] == {}
    assert report["split_index_positions"] == {}
