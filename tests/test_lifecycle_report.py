"""Pinning tests for open-loop surfacing in the report tables
(:mod:`repro.analysis.lifecycle`, :mod:`repro.analysis.sweep`).

The admission-control layer (docs/LOAD.md) added a ``queue_wait`` span
phase and ``shed``/``overload`` abort classes; these tests pin that the
report tables surface them for open-loop data AND that closed-loop
reports are byte-for-byte what they were before the traffic layer
existed (the gating contract)."""

from repro.analysis.lifecycle import format_lifecycle
from repro.analysis.sweep import format_sweep_table
from repro.obs.spans import SpanRecorder


def _closed_recorder():
    recorder = SpanRecorder()
    recorder.protocol = "hades"
    recorder.record_attempt(node=0, slot=0, txid=1, attempt=0,
                            committed=True,
                            phases={"execute": 4_000.0,
                                    "validate": 1_000.0},
                            total_latency_ns=5_000.0)
    recorder.record_attempt(node=0, slot=1, txid=2, attempt=0,
                            committed=False,
                            phases={"execute": 2_000.0},
                            reason="remote conflict",
                            abort_class="lr_conflict")
    return recorder


def _open_recorder():
    recorder = _closed_recorder()
    recorder.record_attempt(node=1, slot=0, txid=3, attempt=0,
                            committed=True,
                            phases={"queue_wait": 3_000.0,
                                    "execute": 4_000.0},
                            total_latency_ns=7_000.0)
    recorder.record_attempt(node=1, slot=1, txid=4, attempt=0,
                            committed=False, phases={},
                            reason="queue full",
                            abort_class="shed")
    recorder.record_attempt(node=1, slot=2, txid=5, attempt=0,
                            committed=False, phases={},
                            reason="degraded mode",
                            abort_class="overload")
    return recorder


def _cell(**extra):
    row = {"scenario": "HT-wA", "protocol": "hades", "seed": 7,
           "throughput_tps": 1_000_000.0, "abort_rate": 0.1,
           "committed": 100, "aborted": 10}
    row.update(extra)
    return row


class TestLifecycleOpenLoopRows:
    def test_closed_loop_summary_has_no_open_loop_rows(self):
        text = format_lifecycle({"hades": _closed_recorder()})
        assert "queue wait" not in text
        assert "shed aborts" not in text
        assert "overload aborts" not in text

    def test_open_loop_summary_grows_the_rows(self):
        text = format_lifecycle({"hades": _open_recorder()})
        assert "queue wait p50 (us)" in text
        assert "queue wait p99 (us)" in text
        assert "shed aborts" in text
        assert "overload aborts" in text
        # The phase table picks up queue_wait too.
        assert "queue_wait" in text

    def test_abort_taxonomy_lists_shed_and_overload(self):
        text = format_lifecycle({"hades": _open_recorder()})
        taxonomy = text.split("abort taxonomy")[1] \
                       .split("attempts and retries")[0]
        assert "shed" in taxonomy
        assert "overload" in taxonomy

    def test_mixed_protocols_fill_missing_with_dash(self):
        text = format_lifecycle({"baseline": _closed_recorder(),
                                 "hades": _open_recorder()})
        lines = [line for line in text.splitlines()
                 if line.startswith("queue wait p50")]
        assert len(lines) == 1
        # The closed-loop column renders "-", the open-loop one a value.
        assert "-" in lines[0] and "3" in lines[0]


class TestSweepOpenLoopColumns:
    def test_closed_loop_grid_has_no_admission_columns(self):
        text = format_sweep_table({"cells": [_cell()], "aggregates": {}})
        assert "admit" not in text
        assert "q-delay" not in text

    def test_rated_grid_grows_admission_columns(self):
        load = {"offered": 200, "admitted": 150, "shed_total": 50,
                "queue_delay": {"buckets": {"100": 10}, "count": 10,
                                "max": 1_000.0, "min": 100.0,
                                "subbucket_bits": 7, "sum": 5_000.0}}
        text = format_sweep_table(
            {"cells": [_cell(rate=1e6, load=load)], "aggregates": {}})
        assert "admit" in text and "shed" in text
        assert "q-delay p95 us" in text
        assert "75.0%" in text

    def test_rated_cell_without_load_renders_dashes(self):
        text = format_sweep_table(
            {"cells": [_cell(rate=1e6)], "aggregates": {}})
        assert "admit" in text  # headers present for a rated grid

    def test_error_cell_in_rated_grid_keeps_row_width(self):
        cells = [_cell(rate=1e6),
                 {"scenario": "HT-wA", "protocol": "hades", "seed": 8,
                  "rate": 1e6, "error": "boom"}]
        text = format_sweep_table({"cells": cells, "aggregates": {}})
        assert "ERROR: boom" in text
