"""The public API surface stays stable and importable."""

import repro


def test_version_present():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_protocol_registry_complete():
    assert set(repro.PROTOCOLS) == {"baseline", "hades", "hades-h"}
    for cls in repro.PROTOCOLS.values():
        assert hasattr(cls, "execute")


def test_request_helpers_exported():
    request = repro.read(1)
    assert request.kind == "read"
    request = repro.write(1, value="v")
    assert request.is_write


def test_subpackages_import_cleanly():
    import repro.analysis  # noqa: F401
    import repro.cluster  # noqa: F401
    import repro.core  # noqa: F401
    import repro.experiments  # noqa: F401
    import repro.hardware  # noqa: F401
    import repro.kvs  # noqa: F401
    import repro.net  # noqa: F401
    import repro.sim  # noqa: F401
    import repro.trace  # noqa: F401
    import repro.verify  # noqa: F401
    import repro.workloads  # noqa: F401
