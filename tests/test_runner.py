"""Tests for the experiment runner."""

import pytest

from repro.config import ClusterConfig
from repro.runner import (
    DEFAULT_DURATION_NS,
    compare_protocols,
    normalized_throughput,
    run_experiment,
)
from repro.workloads import MicroWorkload, make_mix

SMALL = dict(duration_ns=120_000.0, seed=7, llc_sets=256)


def tiny_workload(**kwargs):
    return MicroWorkload(0.5, record_count=2000, **kwargs)


def test_run_experiment_commits_transactions():
    result = run_experiment("baseline", tiny_workload(), **SMALL)
    assert result.metrics.meter.committed > 0
    assert result.metrics.elapsed_ns == 120_000.0
    assert result.throughput > 0
    assert result.workload == "50%WR-50%RD"
    assert result.protocol == "baseline"


def test_unknown_protocol_rejected():
    with pytest.raises(KeyError):
        run_experiment("spanner", tiny_workload(), **SMALL)


def test_empty_workload_list_rejected():
    with pytest.raises(ValueError):
        run_experiment("baseline", [], **SMALL)


def test_deterministic_given_seed():
    first = run_experiment("hades", tiny_workload(), **SMALL)
    second = run_experiment("hades", tiny_workload(), **SMALL)
    assert first.metrics.meter.committed == second.metrics.meter.committed
    assert first.metrics.latency.mean() == second.metrics.latency.mean()


def test_different_seeds_differ():
    first = run_experiment("hades", tiny_workload(), **SMALL)
    second = run_experiment("hades", tiny_workload(),
                            duration_ns=120_000.0, seed=8, llc_sets=256)
    assert (first.metrics.latency.mean() != second.metrics.latency.mean()
            or first.metrics.meter.committed != second.metrics.meter.committed)


def test_warmup_metrics_discarded():
    warm = run_experiment("baseline", tiny_workload(), duration_ns=120_000.0,
                          warmup_ns=60_000.0, seed=7, llc_sets=256)
    cold = run_experiment("baseline", tiny_workload(), **SMALL)
    # Same measurement window length; warm run must not include warm-up
    # commits (throughput the same ballpark, not doubled).
    assert warm.metrics.elapsed_ns == cold.metrics.elapsed_ns
    assert warm.metrics.meter.committed < 2 * cold.metrics.meter.committed


def test_mix_partitions_slots_and_reports_per_workload():
    workloads = make_mix(["HT-wA", "TATP"], scale=0.01)
    result = run_experiment("baseline", workloads, **SMALL)
    assert set(result.per_workload) == {"HT-wA", "TATP"}
    for metrics in result.per_workload.values():
        assert metrics.meter.committed > 0
    total = sum(m.meter.committed for m in result.per_workload.values())
    assert total == result.metrics.meter.committed
    assert result.workload == "HT-wA+TATP"


def test_compare_protocols_and_normalization():
    results = compare_protocols(lambda: tiny_workload(),
                                protocols=("baseline", "hades"),
                                duration_ns=120_000.0, seed=7, llc_sets=256)
    speedups = normalized_throughput(results)
    assert speedups["baseline"] == pytest.approx(1.0)
    assert speedups["hades"] > 0


def test_custom_cluster_config_respected():
    config = ClusterConfig(nodes=3, cores_per_node=2, multiplexing=1)
    result = run_experiment("hades", tiny_workload(), config=config, **SMALL)
    assert result.config.total_cores == 6
    assert result.metrics.meter.committed > 0


def test_default_duration_is_reasonable():
    assert DEFAULT_DURATION_NS >= 1_000_000.0
