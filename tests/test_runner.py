"""Tests for the experiment runner."""

import pytest

from repro.config import ClusterConfig
from repro.runner import (
    DEFAULT_DURATION_NS,
    compare_protocols,
    normalized_throughput,
    run_experiment,
)
from repro.workloads import MicroWorkload, make_mix

SMALL = dict(duration_ns=120_000.0, seed=7, llc_sets=256)


def tiny_workload(**kwargs):
    return MicroWorkload(0.5, record_count=2000, **kwargs)


def test_run_experiment_commits_transactions():
    result = run_experiment("baseline", tiny_workload(), **SMALL)
    assert result.metrics.meter.committed > 0
    assert result.metrics.elapsed_ns == 120_000.0
    assert result.throughput > 0
    assert result.workload == "50%WR-50%RD"
    assert result.protocol == "baseline"


def test_unknown_protocol_rejected():
    with pytest.raises(KeyError):
        run_experiment("spanner", tiny_workload(), **SMALL)


def test_empty_workload_list_rejected():
    with pytest.raises(ValueError):
        run_experiment("baseline", [], **SMALL)


def test_deterministic_given_seed():
    first = run_experiment("hades", tiny_workload(), **SMALL)
    second = run_experiment("hades", tiny_workload(), **SMALL)
    assert first.metrics.meter.committed == second.metrics.meter.committed
    assert first.metrics.latency.mean() == second.metrics.latency.mean()


def test_different_seeds_differ():
    first = run_experiment("hades", tiny_workload(), **SMALL)
    second = run_experiment("hades", tiny_workload(),
                            duration_ns=120_000.0, seed=8, llc_sets=256)
    assert (first.metrics.latency.mean() != second.metrics.latency.mean()
            or first.metrics.meter.committed != second.metrics.meter.committed)


def test_warmup_metrics_discarded():
    warm = run_experiment("baseline", tiny_workload(), duration_ns=120_000.0,
                          warmup_ns=60_000.0, seed=7, llc_sets=256)
    cold = run_experiment("baseline", tiny_workload(), **SMALL)
    # Same measurement window length; warm run must not include warm-up
    # commits (throughput the same ballpark, not doubled).
    assert warm.metrics.elapsed_ns == cold.metrics.elapsed_ns
    assert warm.metrics.meter.committed < 2 * cold.metrics.meter.committed


def test_mix_partitions_slots_and_reports_per_workload():
    workloads = make_mix(["HT-wA", "TATP"], scale=0.01)
    result = run_experiment("baseline", workloads, **SMALL)
    assert set(result.per_workload) == {"HT-wA", "TATP"}
    for metrics in result.per_workload.values():
        assert metrics.meter.committed > 0
    total = sum(m.meter.committed for m in result.per_workload.values())
    assert total == result.metrics.meter.committed
    assert result.workload == "HT-wA+TATP"


def test_compare_protocols_and_normalization():
    results = compare_protocols(lambda: tiny_workload(),
                                protocols=("baseline", "hades"),
                                duration_ns=120_000.0, seed=7, llc_sets=256)
    speedups = normalized_throughput(results)
    assert speedups["baseline"] == pytest.approx(1.0)
    assert speedups["hades"] > 0


def test_custom_cluster_config_respected():
    config = ClusterConfig(nodes=3, cores_per_node=2, multiplexing=1)
    result = run_experiment("hades", tiny_workload(), config=config, **SMALL)
    assert result.config.total_cores == 6
    assert result.metrics.meter.committed > 0


def test_default_duration_is_reasonable():
    assert DEFAULT_DURATION_NS >= 1_000_000.0


def test_compare_legs_equal_standalone_runs():
    """Each compare_protocols leg gets a fresh workload, so its result
    is bit-identical to a standalone run of the same (protocol, seed) —
    the first leg's generator draws must not reseed the second leg's."""
    results = compare_protocols(lambda: tiny_workload(),
                                protocols=("baseline", "hades"),
                                duration_ns=60_000.0, seed=7, llc_sets=256)
    for protocol in ("baseline", "hades"):
        standalone = run_experiment(protocol, tiny_workload(),
                                    duration_ns=60_000.0, seed=7,
                                    llc_sets=256)
        leg = results[protocol]
        assert leg.metrics.meter.committed == standalone.metrics.meter.committed
        assert leg.metrics.meter.aborted == standalone.metrics.meter.aborted
        assert leg.mean_latency_ns == standalone.mean_latency_ns
        assert (leg.metrics.counters.as_dict()
                == standalone.metrics.counters.as_dict())


def test_compare_rejects_reused_workload_instance():
    """A factory that hands back the same instance would let run order
    leak between legs through the workload's mutable generator state."""
    shared = tiny_workload()
    with pytest.raises(ValueError, match="same MicroWorkload instance"):
        compare_protocols(lambda: shared,
                          protocols=("baseline", "hades"),
                          duration_ns=20_000.0, seed=7, llc_sets=256)


def test_bloom_ops_reported_as_per_run_deltas():
    first = run_experiment("hades", tiny_workload(), duration_ns=30_000.0,
                           seed=7, llc_sets=256)
    second = run_experiment("hades", tiny_workload(), duration_ns=30_000.0,
                            seed=7, llc_sets=256)
    assert first.bloom_read_ops > 0
    assert second.bloom_read_ops == first.bloom_read_ops
    assert second.bloom_write_ops == first.bloom_write_ops
