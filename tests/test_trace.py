"""Tests for trace recording, persistence, and replay."""

import pytest

from repro.config import ClusterConfig
from repro.trace import (
    Trace,
    load_trace,
    record_trace,
    replay_trace,
    save_trace,
)
from repro.workloads import MicroWorkload, TatpWorkload

SMALL = ClusterConfig(nodes=3, cores_per_node=2, multiplexing=1)


def small_trace(transactions=4, seed=9):
    workload = MicroWorkload(0.5, record_count=500, seed=3)
    return record_trace(workload, config=SMALL,
                        transactions_per_client=transactions, seed=seed)


class TestRecording:
    def test_one_stream_per_slot(self):
        trace = small_trace()
        assert len(trace.clients) == 3 * 2  # N x (C x m)
        assert trace.transaction_count == 6 * 4
        assert trace.request_count == 6 * 4 * 5  # 5 requests per txn

    def test_population_captured(self):
        trace = small_trace()
        assert len(trace.records) == 500
        record_id, data_bytes, home = trace.records[0]
        assert data_bytes > 0
        assert 0 <= home < 3

    def test_deterministic_given_seed(self):
        first, second = small_trace(seed=7), small_trace(seed=7)
        assert first.clients == second.clients
        different = small_trace(seed=8)
        assert different.clients != first.clients

    def test_interactive_bodies_rejected(self):
        class Interactive(MicroWorkload):
            def next_transaction(self, rng, node_id, cluster, client_id=None):
                return lambda: iter(())

        workload = Interactive(0.5, record_count=100)
        with pytest.raises(TypeError):
            record_trace(workload, config=SMALL, transactions_per_client=1)

    def test_validates_count(self):
        workload = MicroWorkload(0.5, record_count=100)
        with pytest.raises(ValueError):
            record_trace(workload, config=SMALL, transactions_per_client=0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.workload_name == trace.workload_name
        assert loaded.records == trace.records
        assert loaded.clients == trace.clients

    def test_tuple_values_survive(self, tmp_path):
        trace = small_trace()
        some_spec = next(iter(trace.clients.values()))[0]
        assert any(isinstance(r.value, tuple) for r in some_spec
                   if r.is_write)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        for (key, specs), (_k2, loaded_specs) in zip(
                sorted(trace.clients.items()), sorted(loaded.clients.items())):
            for spec, loaded_spec in zip(specs, loaded_specs):
                for original, restored in zip(spec, loaded_spec):
                    assert original == restored

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": 99}\n')
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestReplay:
    def test_replay_commits_every_traced_transaction(self):
        trace = small_trace()
        result = replay_trace("hades", trace, config=SMALL)
        assert result.metrics.meter.committed == trace.transaction_count
        assert result.metrics.elapsed_ns > 0

    def test_same_trace_all_protocols_fixed_work_comparison(self):
        """The paper's methodology: identical inputs per configuration;
        the hardware protocols finish the same work sooner."""
        trace = small_trace(transactions=6)
        elapsed = {}
        for protocol in ("baseline", "hades-h", "hades"):
            result = replay_trace(protocol, trace, config=SMALL)
            assert result.metrics.meter.committed == trace.transaction_count
            elapsed[protocol] = result.metrics.elapsed_ns
        assert elapsed["hades"] < elapsed["baseline"]
        assert elapsed["hades-h"] < elapsed["baseline"]

    def test_replay_deterministic(self):
        trace = small_trace()
        first = replay_trace("hades", trace, config=SMALL)
        second = replay_trace("hades", trace, config=SMALL)
        assert first.metrics.elapsed_ns == second.metrics.elapsed_ns

    def test_shape_mismatch_rejected(self):
        trace = small_trace()
        with pytest.raises(ValueError):
            replay_trace("hades", trace,
                         config=ClusterConfig(nodes=5, cores_per_node=2))

    def test_tatp_trace_replays(self):
        workload = TatpWorkload(subscribers=300)
        trace = record_trace(workload, config=SMALL,
                             transactions_per_client=3, seed=2)
        result = replay_trace("hades-h", trace, config=SMALL)
        assert result.metrics.meter.committed == trace.transaction_count
        assert result.workload == "TATP"
