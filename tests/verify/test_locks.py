"""Leak sweep: every kind of unreleased transactional state is named."""

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.core.replication import HadesReplicatedProtocol
from repro.hardware.bloom import BloomFilter
from repro.sim.engine import Engine
from repro.verify import find_leaks


def build_cluster():
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(nodes=3, cores_per_node=2),
                      llc_sets=256)
    cluster.allocate_record(1, 64)
    return cluster


def test_quiescent_cluster_has_no_leaks():
    assert find_leaks(build_cluster()) == []


def test_each_leak_kind_is_reported():
    cluster = build_cluster()
    record = cluster.record(1)
    node = cluster.node(record.home_node)
    line = record.lines[0]
    owner = (node.node_id, 7)

    bf = BloomFilter(64)
    bf.insert(line)
    assert node.directory.try_lock(owner, BloomFilter(64), bf, [line])
    node.directory.tag_write(line, 7)
    node.nic.record_remote_read(((node.node_id + 1) % 3, 9), [line])
    node.register_local_tx(7)
    meta = node.memory.metadata(record.address)
    assert meta.try_lock(owner)

    leaks = find_leaks(cluster)
    assert any("directory lock" in leak for leak in leaks)
    assert any("WrTX_ID tag" in leak for leak in leaks)
    assert any("NIC remote entry" in leak for leak in leaks)
    assert any("core tx table" in leak for leak in leaks)
    assert any("record lock" in leak for leak in leaks)


def test_replica_temporaries_count_as_leaks():
    cluster = build_cluster()
    protocol = HadesReplicatedProtocol(cluster, seed=1, replicas=1)
    line = cluster.record(1).lines[0]
    replica = protocol.replica_nodes_of_line(line)[0]
    protocol.stores[replica].persist_temporary((0, 4), {line: "x"})

    leaks = find_leaks(cluster, protocol)
    assert leaks == [f"node {replica}: replica temporary for (0, 4) "
                     f"never promoted or discarded"]

    protocol.stores[replica].promote((0, 4))
    assert find_leaks(cluster, protocol) == []
