"""Tests for the serializability checker, then the checker applied to
real protocol runs under contention."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.core import PROTOCOLS, read, write
from repro.sim import Engine
from repro.sim.random import DeterministicRandom
from repro.verify import SerializabilityChecker, TransactionObservation
from repro.verify.serializability import _find_cycle


class TestCycleDetection:
    def test_empty_graph(self):
        assert _find_cycle({}) is None

    def test_dag_has_no_cycle(self):
        assert _find_cycle({1: {2, 3}, 2: {3}, 3: set()}) is None

    def test_two_node_cycle(self):
        cycle = _find_cycle({1: {2}, 2: {1}})
        assert set(cycle) == {1, 2}

    def test_long_cycle_found(self):
        edges = {i: {i + 1} for i in range(10)}
        edges[10] = {4}
        cycle = _find_cycle(edges)
        assert set(cycle) == set(range(4, 11))

    def test_disconnected_components(self):
        edges = {1: {2}, 2: set(), 10: {11}, 11: {10}}
        cycle = _find_cycle(edges)
        assert set(cycle) == {10, 11}


def synthetic_checker():
    """A checker with manually-injected install order (no cluster)."""
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(nodes=2, cores_per_node=1),
                      llc_sets=64)
    cluster.allocate_record(1, 64)
    cluster.allocate_record(2, 64)
    checker = SerializabilityChecker(cluster)
    checker.install()
    return checker


class TestCheckerSemantics:
    def test_serial_history_passes(self):
        checker = synthetic_checker()
        checker._install_order[1] = ["a", "b"]
        checker.observe_commit("T1", reads={1: None}, writes={1: "a"})
        checker.observe_commit("T2", reads={1: "a"}, writes={1: "b"})
        result = checker.check()
        assert result
        assert result.serializable and not result.anomalies

    def test_lost_update_detected_as_cycle(self):
        """Both transactions read the initial value and both wrote:
        T1 -> T2 (WW) and T2 -> T1 (RW: T2 read before T1's write)."""
        checker = synthetic_checker()
        checker._install_order[1] = ["a", "b"]
        checker.observe_commit("T1", reads={1: None}, writes={1: "a"})
        checker.observe_commit("T2", reads={1: None}, writes={1: "b"})
        result = checker.check()
        assert not result.serializable
        assert set(result.cycle) == {"T1", "T2"}

    def test_write_skew_detected(self):
        """Classic write skew: T1 reads r2/writes r1, T2 reads r1/writes
        r2, both reading initial values."""
        checker = synthetic_checker()
        checker._install_order[1] = ["x1"]
        checker._install_order[2] = ["x2"]
        checker.observe_commit("T1", reads={2: None}, writes={1: "x1"})
        checker.observe_commit("T2", reads={1: None}, writes={2: "x2"})
        result = checker.check()
        assert not result.serializable

    def test_read_of_uninstalled_value_is_anomaly(self):
        checker = synthetic_checker()
        checker._install_order[1] = ["a"]
        checker.observe_commit("T1", reads={1: "ghost"}, writes={})
        result = checker.check()
        assert result.anomalies

    def test_duplicate_written_values_flagged(self):
        checker = synthetic_checker()
        checker._install_order[1] = ["same"]
        checker.observe_commit("T1", reads={}, writes={1: "same"})
        checker.observe_commit("T2", reads={}, writes={1: "same"})
        result = checker.check()
        assert result.anomalies

    def test_double_install_rejected(self):
        checker = synthetic_checker()
        with pytest.raises(RuntimeError):
            checker.install()


def run_contended(protocol_name, clients, txns_per_client, records, seed):
    """Run a contended workload and feed every commit to the checker."""
    engine = Engine()
    cluster = Cluster(engine, ClusterConfig(nodes=3, cores_per_node=2),
                      llc_sets=256)
    protocol = PROTOCOLS[protocol_name](cluster, seed=seed)
    for record_id in range(1, records + 1):
        cluster.allocate_record(record_id, 64)
    checker = SerializabilityChecker(cluster)
    checker.install()
    token_counter = itertools.count()
    first_lines = {r: cluster.record(r).lines[0] for r in range(1, records + 1)}

    def client(client_index):
        rng = DeterministicRandom(seed * 1000 + client_index)
        node_id = client_index % 3
        slot = client_index % 4
        for _ in range(txns_per_client):
            touched = rng.distinct_sample(records, rng.randint(1, 3))
            reads, writes, spec = {}, {}, []
            read_records = []
            for record_index in touched:
                record_id = record_index + 1
                if rng.random() < 0.6:
                    token = ("w", client_index, next(token_counter))
                    writes[record_id] = token
                    spec.append(write(record_id, value=token))
                else:
                    read_records.append(record_id)
                    spec.append(read(record_id))
            ctx = yield from protocol.execute(node_id, slot, spec)
            for record_id, values in zip(read_records, ctx.read_results):
                reads[record_id] = values[first_lines[record_id]]
            checker.observe_commit(ctx.txid, reads, writes)

    for client_index in range(clients):
        engine.process(client(client_index))
    engine.run()
    return checker.check()


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_real_contended_runs_are_serializable(protocol_name):
    result = run_contended(protocol_name, clients=6, txns_per_client=8,
                           records=4, seed=11)
    assert result.transactions == 48
    assert not result.anomalies, result.anomalies
    assert result.serializable, f"cycle: {result.cycle}"


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=8, deadline=None)
def test_serializability_under_random_seeds(protocol_name, seed):
    result = run_contended(protocol_name, clients=4, txns_per_client=4,
                           records=3, seed=seed)
    assert not result.anomalies, result.anomalies
    assert result.serializable, f"cycle: {result.cycle}"


#: Seeds where the pre-fix baseline admitted write skew: the batched
#: unlock trailing a remote commit write landed during the write's
#: apply window, so a concurrent read-set validation saw the *old*
#: version with the lock already clear and passed.  Pinned so the
#: unlock_after_apply deferral (cluster/record.py) cannot regress.
WRITE_SKEW_SEEDS = [2772, 2942, 4134]


@pytest.mark.parametrize("seed", WRITE_SKEW_SEEDS)
def test_unlock_cannot_overtake_commit_write(seed):
    result = run_contended("baseline", clients=4, txns_per_client=4,
                           records=3, seed=seed)
    assert not result.anomalies, result.anomalies
    assert result.serializable, f"cycle: {result.cycle}"
