"""Tests for the workload generators: statistics the paper states."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.sim.engine import Engine
from repro.sim.random import DeterministicRandom
from repro.workloads import (
    FIG14_PAIRS,
    TABLE5_MIXES,
    MicroWorkload,
    SmallbankWorkload,
    TatpWorkload,
    TpccWorkload,
    YcsbWorkload,
    make_mix,
    make_workload,
    micro_suite,
    table5_mix,
)


def make_cluster(nodes=3):
    return Cluster(Engine(), ClusterConfig(nodes=nodes, cores_per_node=2),
                   llc_sets=64)


def sample_transactions(workload, count=300, nodes=3, client_id=(0, 0)):
    cluster = make_cluster(nodes)
    workload.populate(cluster)
    rng = DeterministicRandom(99)
    specs = [workload.next_transaction(rng, node_id=0, cluster=cluster,
                                       client_id=client_id)
             for _ in range(count)]
    return cluster, specs


def request_stats(specs):
    total = sum(len(spec) for spec in specs)
    writes = sum(1 for spec in specs for request in spec if request.is_write)
    return total / len(specs), writes / total


class TestMicro:
    def test_names_follow_write_fraction(self):
        assert MicroWorkload(1.0, record_count=100).name == "100%WR"
        assert MicroWorkload(0.0, record_count=100).name == "100%RD"
        assert MicroWorkload(0.5, record_count=100).name == "50%WR-50%RD"

    def test_suite_order_matches_fig3(self):
        names = [w.name for w in micro_suite(record_count=100)]
        assert names == ["100%WR", "50%WR-50%RD", "100%RD"]

    def test_five_requests_per_transaction(self):
        workload = MicroWorkload(0.5, record_count=500)
        _cluster, specs = sample_transactions(workload, count=50)
        assert all(len(spec) == 5 for spec in specs)

    def test_write_fraction_realized(self):
        workload = MicroWorkload(0.5, record_count=500)
        _cluster, specs = sample_transactions(workload)
        _reqs, write_fraction = request_stats(specs)
        assert write_fraction == pytest.approx(0.5, abs=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroWorkload(1.5, record_count=100)
        with pytest.raises(ValueError):
            MicroWorkload(0.5, record_count=100, requests_per_txn=0)
        with pytest.raises(ValueError):
            MicroWorkload(0.5, record_count=100, record_bytes=64,
                          field_bytes=128)

    def test_locality_steering(self):
        workload = MicroWorkload(0.5, record_count=2000, locality=1.0)
        cluster, specs = sample_transactions(workload, count=50)
        local = remote = 0
        for spec in specs:
            for request in spec:
                if cluster.record(request.record_id).home_node == 0:
                    local += 1
                else:
                    remote += 1
        assert local / (local + remote) > 0.95


class TestYcsb:
    def test_variants_set_write_fraction(self):
        assert YcsbWorkload("ht", "a", record_count=200).write_fraction == 0.5
        assert YcsbWorkload("ht", "b", record_count=200).write_fraction == 0.05

    def test_names_match_figure_labels(self):
        assert YcsbWorkload("ht", "a", record_count=100).name == "HT-wA"
        assert YcsbWorkload("bplustree", "b",
                            record_count=100).name == "B+Tree-wB"

    def test_unknown_store_or_variant(self):
        with pytest.raises(KeyError):
            YcsbWorkload("cuckoo", "a", record_count=100)
        with pytest.raises(ValueError):
            YcsbWorkload("ht", "c", record_count=100)

    def test_index_probe_depth_becomes_work(self):
        deep = YcsbWorkload("map", "b", record_count=3000)
        shallow = YcsbWorkload("ht", "b", record_count=3000)
        _c1, deep_specs = sample_transactions(deep, count=30)
        _c2, shallow_specs = sample_transactions(shallow, count=30)
        deep_work = [r.work_cycles for spec in deep_specs for r in spec]
        shallow_work = [r.work_cycles for spec in shallow_specs for r in spec]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(deep_work) > mean(shallow_work)  # Map is deeper than HT

    def test_writes_update_one_field(self):
        workload = YcsbWorkload("ht", "a", record_count=300)
        _cluster, specs = sample_transactions(workload, count=100)
        for spec in specs:
            for request in spec:
                if request.is_write:
                    assert request.size <= 100
                    assert request.offset % 100 == 0

    def test_wb_write_fraction(self):
        workload = YcsbWorkload("btree", "b", record_count=500)
        _cluster, specs = sample_transactions(workload, count=400)
        _reqs, write_fraction = request_stats(specs)
        assert write_fraction == pytest.approx(0.05, abs=0.02)


class TestTpcc:
    def test_requests_per_transaction_near_paper(self):
        workload = TpccWorkload(warehouses=4, items=500)
        _cluster, specs = sample_transactions(workload, count=400)
        mean_requests, write_fraction = request_stats(specs)
        assert 10.0 <= mean_requests <= 16.0  # paper: about 13.5
        assert 0.35 <= write_fraction <= 0.60  # write intensive

    def test_client_bound_to_home_district(self):
        workload = TpccWorkload(warehouses=4, items=500)
        cluster = make_cluster()
        workload.populate(cluster)
        rng = DeterministicRandom(1)
        districts = set()
        for _ in range(50):
            spec = workload.next_transaction(rng, 0, cluster,
                                             client_id=(0, 0))
            for request in spec:
                if request.is_write and request.record_id < (
                        workload.record_id_base + workload.warehouses
                        + workload.districts):
                    if request.record_id >= (workload.record_id_base
                                             + workload.warehouses):
                        districts.add(request.record_id)
        assert len(districts) == 1  # one home district per terminal

    def test_distinct_clients_get_distinct_homes(self):
        workload = TpccWorkload(warehouses=4, items=500)
        cluster = make_cluster()
        workload.populate(cluster)
        rng = DeterministicRandom(1)
        homes = set()
        for slot in range(8):
            workload.next_transaction(rng, 0, cluster, client_id=(0, slot))
            homes.add(workload._client_homes[(0, slot)])
        assert len(homes) == 8

    def test_fine_grained_writes(self):
        workload = TpccWorkload(warehouses=2, items=200)
        _cluster, specs = sample_transactions(workload, count=100)
        sizes = [r.size for spec in specs for r in spec if r.is_write]
        assert max(sizes) <= 256
        assert min(sizes) == 8

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TpccWorkload(warehouses=0)
        with pytest.raises(ValueError):
            TpccWorkload(items=2)


class TestTatp:
    def test_read_write_mix_is_80_20(self):
        workload = TatpWorkload(subscribers=2000)
        _cluster, specs = sample_transactions(workload, count=800)
        _reqs, write_fraction = request_stats(specs)
        assert write_fraction == pytest.approx(0.20, abs=0.06)

    def test_small_transactions(self):
        workload = TatpWorkload(subscribers=2000)
        _cluster, specs = sample_transactions(workload, count=200)
        assert all(1 <= len(spec) <= 2 for spec in specs)

    def test_population_has_four_tables(self):
        workload = TatpWorkload(subscribers=100)
        cluster = make_cluster()
        workload.populate(cluster)
        assert cluster.record_count == 400


class TestSmallbank:
    def test_write_fraction_near_paper(self):
        workload = SmallbankWorkload(customers=2000)
        _cluster, specs = sample_transactions(workload, count=800)
        _reqs, write_fraction = request_stats(specs)
        assert write_fraction == pytest.approx(0.46, abs=0.08)

    def test_two_records_per_customer(self):
        workload = SmallbankWorkload(customers=50)
        cluster = make_cluster()
        workload.populate(cluster)
        assert cluster.record_count == 100

    def test_validates_customers(self):
        with pytest.raises(ValueError):
            SmallbankWorkload(customers=1)


class TestFactoriesAndMixes:
    def test_every_figure_label_buildable(self):
        for label in ("TPC-C", "TATP", "Smallbank", "HT-wA", "HT-wB",
                      "Map-wA", "Map-wB", "BTree-wA", "BTree-wB",
                      "B+Tree-wA", "B+Tree-wB"):
            workload = make_workload(label, scale=0.01)
            assert workload.name == label

    def test_unknown_label_rejected(self):
        with pytest.raises(KeyError):
            make_workload("Redis-wA")
        with pytest.raises(ValueError):
            make_workload("TATP", scale=0)

    def test_mix_gets_disjoint_record_ranges(self):
        workloads = make_mix(["HT-wA", "TATP"], scale=0.01)
        cluster = make_cluster()
        for workload in workloads:
            workload.populate(cluster)  # raises on id collision
        assert workloads[0].record_id_base != workloads[1].record_id_base

    def test_table5_mixes_complete(self):
        assert set(TABLE5_MIXES) == {f"mix{i}" for i in range(1, 9)}
        for labels in TABLE5_MIXES.values():
            assert len(labels) == 4

    def test_table5_mix_builds(self):
        workloads = table5_mix("mix1", scale=0.01)
        assert [w.name for w in workloads] == TABLE5_MIXES["mix1"]
        with pytest.raises(KeyError):
            table5_mix("mix99")

    def test_fig14_pairs_are_pairs(self):
        assert all(len(pair) == 2 for pair in FIG14_PAIRS)
