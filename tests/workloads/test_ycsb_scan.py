"""Tests for the YCSB-E scan workload."""

import pytest

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.runner import run_experiment
from repro.sim import Engine
from repro.sim.random import DeterministicRandom
from repro.workloads.ycsb import YcsbScanWorkload


def make_workload(**kwargs):
    defaults = dict(store="bplustree", record_count=1000, scan_length=6,
                    seed=5)
    defaults.update(kwargs)
    return YcsbScanWorkload(**defaults)


def sample(workload, count=200):
    cluster = Cluster(Engine(), ClusterConfig(nodes=3, cores_per_node=2),
                      llc_sets=64)
    workload.populate(cluster)
    rng = DeterministicRandom(7)
    return [workload.next_transaction(rng, 0, cluster) for _ in range(count)]


def test_name_labels_scan_variant():
    assert make_workload().name == "B+Tree-wE"
    assert make_workload(store="btree").name == "BTree-wE"


def test_hash_table_rejected():
    with pytest.raises(ValueError):
        make_workload(store="ht")


def test_parameters_validated():
    with pytest.raises(ValueError):
        make_workload(scan_length=0)
    with pytest.raises(ValueError):
        make_workload(scan_length=5, max_scan_length=3)


def test_scans_read_consecutive_records():
    workload = make_workload()
    specs = sample(workload)
    scans = [spec for spec in specs if len(spec) > 1]
    assert scans, "no scans generated"
    for spec in scans:
        assert all(not request.is_write for request in spec)
        ids = [request.record_id for request in spec]
        assert ids == list(range(ids[0], ids[0] + len(ids)))


def test_update_fraction_about_five_percent():
    specs = sample(make_workload(), count=600)
    updates = sum(1 for spec in specs
                  if len(spec) == 1 and spec[0].is_write)
    assert 0.01 <= updates / len(specs) <= 0.12


def test_scan_lengths_respect_bounds():
    workload = make_workload(scan_length=4, max_scan_length=9)
    specs = sample(workload, count=300)
    lengths = [len(spec) for spec in specs if len(spec) > 1]
    assert lengths
    assert min(lengths) >= 1
    assert max(lengths) <= 9


def test_runs_under_every_protocol():
    for protocol in ("baseline", "hades", "hades-h"):
        result = run_experiment(protocol, make_workload(record_count=500),
                                duration_ns=100_000.0, seed=3, llc_sets=256)
        assert result.metrics.meter.committed > 0
